// Package vclock abstracts wall-clock time behind a Clock interface with two
// implementations: Real (backed by the system clock) and Virtual (a
// deterministic discrete-event scheduler). The same workflow-manager,
// scheduler, and feedback code runs under either clock; examples run in real
// time, while the campaign driver replays a 600,000-node-hour Summit
// campaign in virtual time on one machine.
package vclock

import (
	"slices"
	"sync"
	"time"
)

// EventID identifies a scheduled callback so it can be canceled.
type EventID int64

// Clock is the time facility components program against. Now returns the
// current time; After schedules fn to run once d from now; Cancel revokes a
// pending event (returning false if it already fired or never existed).
type Clock interface {
	Now() time.Time
	After(d time.Duration, fn func()) EventID
	Cancel(id EventID) bool
}

// ---------------------------------------------------------------------------
// Real clock

// Real is a Clock backed by the system clock and time.AfterFunc.
// The zero value is ready to use.
type Real struct {
	mu     sync.Mutex
	nextID EventID
	timers map[EventID]*time.Timer
}

// NewReal returns a real-time clock.
func NewReal() *Real { return &Real{timers: make(map[EventID]*time.Timer)} }

// Now returns the current wall-clock time.
func (r *Real) Now() time.Time { return time.Now() }

// After schedules fn after real duration d.
func (r *Real) After(d time.Duration, fn func()) EventID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.timers == nil {
		r.timers = make(map[EventID]*time.Timer)
	}
	r.nextID++
	id := r.nextID
	r.timers[id] = time.AfterFunc(d, func() {
		r.mu.Lock()
		delete(r.timers, id)
		r.mu.Unlock()
		fn()
	})
	return id
}

// Cancel stops a pending timer.
func (r *Real) Cancel(id EventID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[id]
	if !ok {
		return false
	}
	delete(r.timers, id)
	return t.Stop()
}

// ---------------------------------------------------------------------------
// Virtual clock (discrete-event scheduler)

// event is one pending callback. pos is its index in the four-ary heap, or
// -1 while the event is staged in the current drain batch. Fired and
// canceled events return to a freelist with fn cleared, so a campaign
// holding 100k+ pending events reuses the same structs instead of churning
// the garbage collector.
type event struct {
	at  time.Time
	seq int64 // tie-break: FIFO among events at the same instant
	id  EventID
	fn  func()
	pos int32
}

// Virtual is a single-threaded discrete-event clock. Events execute in
// strictly nondecreasing time order with FIFO tie-breaking, which makes
// campaign replays deterministic. Virtual is not safe for concurrent use;
// the DES is intentionally single-threaded (see DESIGN.md §6).
//
// Engineering (DESIGN.md §11): the pending set lives in an index-tracked
// four-ary heap — half the depth of a binary heap and better cache locality
// per level, with every sift updating the events' stored positions. The
// position index makes Cancel O(log n) (a targeted removal) instead of the
// former O(n) confirmation scan, and lets Step drain a whole run of
// same-timestamp events in one pass: equal-time events form a rooted
// subtree of the heap, so the run is collected by a short DFS and removed
// with targeted sifts instead of full root-cascading pops, then executed
// FIFO from a flat batch.
type Virtual struct {
	now    time.Time
	seq    int64
	nextID EventID

	heap []*event

	// Pending-event index: pages of 2^pageBits slots keyed by id>>pageBits.
	// IDs are sequential, so inserts always land on the newest page and the
	// one-page cache makes the common lookup map-free; a page is dropped as
	// soon as its last live event fires or is canceled. This is what makes
	// Cancel O(log n) — a direct lookup plus one targeted heap sift —
	// instead of the former O(n) scan over the event slice.
	pages      map[EventID]*eventPage
	cachedNo   EventID
	cachedPage *eventPage
	pending    int

	// batch is the current same-timestamp run being executed, sorted by
	// seq; batchPos is the cursor. Canceled batch entries have fn == nil
	// and are skipped (and recycled) as the cursor passes them.
	batch    []*event
	batchPos int

	free     []*event // recycled event structs
	scratch  []int32  // DFS stack reused across drains
	executed int64
}

const (
	pageBits = 10
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// eventPage is one dense window of the pending-event index.
type eventPage struct {
	events [pageSize]*event
	live   int
}

// NewVirtual returns a virtual clock starting at the given epoch. The paper's
// campaign ran Dec 2020 – Mar 2021; the campaign driver uses that epoch for
// flavor, but any epoch works.
func NewVirtual(epoch time.Time) *Virtual {
	return &Virtual{now: epoch, pages: make(map[EventID]*eventPage), cachedNo: -1}
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time { return v.now }

// After schedules fn at now+d. Negative d is treated as zero.
func (v *Virtual) After(d time.Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return v.At(v.now.Add(d), fn)
}

// At schedules fn at the absolute virtual time t. Times in the past are
// clamped to now, preserving run-order determinism.
func (v *Virtual) At(t time.Time, fn func()) EventID {
	if t.Before(v.now) {
		t = v.now
	}
	v.nextID++
	v.seq++
	e := v.alloc()
	e.at, e.seq, e.id, e.fn = t, v.seq, v.nextID, fn
	v.indexPut(e)
	v.heapPush(e)
	return v.nextID
}

// Cancel revokes a pending event. It returns false if the event already
// fired, was already canceled, or never existed.
func (v *Virtual) Cancel(id EventID) bool {
	e := v.indexTake(id)
	if e == nil {
		return false
	}
	if e.pos >= 0 {
		v.heapRemove(int(e.pos))
		v.recycle(e)
	} else {
		// Staged in the drain batch: mark dead; the struct is reclaimed
		// when the batch cursor passes it.
		e.fn = nil
	}
	return true
}

// Pending returns the number of scheduled (uncanceled) events.
func (v *Virtual) Pending() int { return v.pending }

// Executed returns the total number of events that have run.
func (v *Virtual) Executed() int64 { return v.executed }

// Step runs the single earliest event, advancing time to it.
// It returns false when no events remain.
func (v *Virtual) Step() bool {
	e := v.peekBatch()
	if e == nil {
		if !v.drainRun() {
			return false
		}
		e = v.peekBatch()
	}
	v.batch[v.batchPos] = nil
	v.batchPos++
	v.now = e.at
	v.executed++
	fn := e.fn
	v.indexTake(e.id)
	v.recycle(e)
	fn()
	return true
}

// Run executes events until none remain.
func (v *Virtual) Run() {
	for v.Step() {
	}
}

// RunUntil executes events with time <= deadline, then advances the clock to
// the deadline (even if the event queue still holds later events).
func (v *Virtual) RunUntil(deadline time.Time) {
	for {
		t, ok := v.peekTime()
		if !ok || t.After(deadline) {
			break
		}
		v.Step()
	}
	if v.now.Before(deadline) {
		v.now = deadline
	}
}

// RunFor executes events within the next d of virtual time.
func (v *Virtual) RunFor(d time.Duration) { v.RunUntil(v.now.Add(d)) }

// peekBatch returns the next live event of the current drain batch without
// consuming it, recycling any canceled entries it skips. Returns nil when
// the batch is exhausted.
func (v *Virtual) peekBatch() *event {
	for v.batchPos < len(v.batch) {
		e := v.batch[v.batchPos]
		if e.fn != nil {
			return e
		}
		v.batch[v.batchPos] = nil
		v.batchPos++
		v.recycle(e)
	}
	return nil
}

// peekTime reports the earliest pending event time.
func (v *Virtual) peekTime() (time.Time, bool) {
	if e := v.peekBatch(); e != nil {
		return e.at, true
	}
	if len(v.heap) > 0 {
		return v.heap[0].at, true
	}
	return time.Time{}, false
}

// drainRun moves the earliest same-timestamp run of events from the heap
// into the execution batch, sorted FIFO by seq. Equal-time events form a
// subtree rooted at the heap root (an ancestor of an equal-time node sorts
// between the root and that node, so it carries the same timestamp), which
// lets the run be collected with a short DFS that only descends into
// equal-time children, then removed with one targeted sift each — no
// re-heapify between pops. Returns false when the heap is empty.
func (v *Virtual) drainRun() bool {
	if len(v.heap) == 0 {
		return false
	}
	v.batch = v.batch[:0]
	v.batchPos = 0
	t := v.heap[0].at
	stack := append(v.scratch[:0], 0)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v.batch = append(v.batch, v.heap[i])
		for c := 4*i + 1; c <= 4*i+4 && int(c) < len(v.heap); c++ {
			if v.heap[c].at.Equal(t) {
				stack = append(stack, c)
			}
		}
	}
	v.scratch = stack[:0]
	if len(v.batch) == len(v.heap) {
		// The whole heap fires at once (dense same-timestamp burst): just
		// clear it — no targeted sifts needed when nothing is left behind.
		for i := range v.heap {
			v.heap[i] = nil
		}
		v.heap = v.heap[:0]
		for _, e := range v.batch {
			e.pos = -1
		}
	} else {
		for _, e := range v.batch {
			v.heapRemove(int(e.pos))
			e.pos = -1
		}
	}
	slices.SortFunc(v.batch, func(a, b *event) int {
		// Same timestamp throughout the run: FIFO order is seq order.
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
	return true
}

// ---------------------------------------------------------------------------
// Index-tracked four-ary heap, keyed on (at, seq)

// before reports whether a fires strictly before b.
func before(a, b *event) bool {
	if c := a.at.Compare(b.at); c != 0 {
		return c < 0
	}
	return a.seq < b.seq
}

func (v *Virtual) heapPush(e *event) {
	e.pos = int32(len(v.heap))
	v.heap = append(v.heap, e)
	v.siftUp(len(v.heap) - 1)
}

// heapRemove unlinks the event at position i, filling the hole with the
// last element and restoring the heap invariant with a single sift.
func (v *Virtual) heapRemove(i int) {
	last := len(v.heap) - 1
	moved := v.heap[last]
	v.heap[last] = nil
	v.heap = v.heap[:last]
	if i == last {
		return
	}
	v.heap[i] = moved
	moved.pos = int32(i)
	if !v.siftDown(i) {
		v.siftUp(i)
	}
}

func (v *Virtual) siftUp(i int) {
	e := v.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := v.heap[parent]
		if !before(e, p) {
			break
		}
		v.heap[i] = p
		p.pos = int32(i)
		i = parent
	}
	v.heap[i] = e
	e.pos = int32(i)
}

// siftDown restores the invariant below position i; reports whether the
// element moved.
func (v *Virtual) siftDown(i int) bool {
	e := v.heap[i]
	start := i
	n := len(v.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		limit := first + 4
		if limit > n {
			limit = n
		}
		for c := first + 1; c < limit; c++ {
			if before(v.heap[c], v.heap[best]) {
				best = c
			}
		}
		if !before(v.heap[best], e) {
			break
		}
		v.heap[i] = v.heap[best]
		v.heap[i].pos = int32(i)
		i = best
	}
	v.heap[i] = e
	e.pos = int32(i)
	return i != start
}

// ---------------------------------------------------------------------------
// Paged pending-event index

// indexPut registers a freshly scheduled event. IDs are assigned
// sequentially, so the insert lands on the newest page, which stays cached.
func (v *Virtual) indexPut(e *event) {
	no := e.id >> pageBits
	p := v.cachedPage
	if no != v.cachedNo || p == nil {
		p = v.pages[no]
		if p == nil {
			p = &eventPage{}
			v.pages[no] = p
		}
		v.cachedNo, v.cachedPage = no, p
	}
	p.events[e.id&pageMask] = e
	p.live++
	v.pending++
}

// indexTake removes and returns the pending event with the given id, or nil
// if it already fired, was canceled, or never existed. Pages are dropped the
// moment their last live event leaves, so a long campaign's index stays
// proportional to the pending set, not to the total events ever scheduled.
func (v *Virtual) indexTake(id EventID) *event {
	if id <= 0 {
		return nil
	}
	no := id >> pageBits
	p := v.cachedPage
	if no != v.cachedNo || p == nil {
		p = v.pages[no]
		if p == nil {
			return nil
		}
		v.cachedNo, v.cachedPage = no, p
	}
	slot := id & pageMask
	e := p.events[slot]
	if e == nil {
		return nil
	}
	p.events[slot] = nil
	p.live--
	v.pending--
	if p.live == 0 {
		delete(v.pages, no)
		if v.cachedNo == no {
			v.cachedPage = nil
		}
	}
	return e
}

// ---------------------------------------------------------------------------
// Event freelist

// alloc returns a recycled event struct, or a new one when the freelist is
// empty.
func (v *Virtual) alloc() *event {
	if n := len(v.free); n > 0 {
		e := v.free[n-1]
		v.free[n-1] = nil
		v.free = v.free[:n-1]
		return e
	}
	return &event{}
}

// recycle clears an event (releasing its closure) and returns it to the
// freelist.
func (v *Virtual) recycle(e *event) {
	e.fn = nil
	v.free = append(v.free, e)
}

// Ticker invokes fn every period until Stop is called, under any Clock.
type Ticker struct {
	clk    Clock
	period time.Duration
	fn     func(now time.Time)
	mu     sync.Mutex
	cur    EventID
	done   bool
}

// NewTicker starts a recurring callback. The first tick fires one period
// from now.
func NewTicker(clk Clock, period time.Duration, fn func(now time.Time)) *Ticker {
	t := &Ticker{clk: clk, period: period, fn: fn}
	t.mu.Lock()
	t.cur = clk.After(period, t.tick)
	t.mu.Unlock()
	return t
}

func (t *Ticker) tick() {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.cur = t.clk.After(t.period, t.tick)
	t.mu.Unlock()
	t.fn(t.clk.Now())
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done = true
	t.clk.Cancel(t.cur)
}

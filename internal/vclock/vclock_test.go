package vclock

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualOrdering(t *testing.T) {
	v := NewVirtual(epoch)
	var got []int
	v.After(3*time.Second, func() { got = append(got, 3) })
	v.After(1*time.Second, func() { got = append(got, 1) })
	v.After(2*time.Second, func() { got = append(got, 2) })
	v.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v", got)
	}
	if !v.Now().Equal(epoch.Add(3 * time.Second)) {
		t.Errorf("clock ends at %v", v.Now())
	}
}

func TestVirtualFIFOTieBreak(t *testing.T) {
	v := NewVirtual(epoch)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		v.After(time.Second, func() { got = append(got, i) })
	}
	v.Run()
	for i, x := range got {
		if x != i {
			t.Fatalf("same-instant events ran out of order: %v", got)
		}
	}
}

func TestVirtualNestedScheduling(t *testing.T) {
	// Events scheduled from inside callbacks must interleave correctly:
	// this is how simulations produce frames while running.
	v := NewVirtual(epoch)
	var frames []time.Duration
	var emit func()
	emit = func() {
		d := v.Now().Sub(epoch)
		frames = append(frames, d)
		if d < 4*time.Second {
			v.After(time.Second, emit)
		}
	}
	v.After(time.Second, emit)
	v.Run()
	if len(frames) != 4 {
		t.Fatalf("frames = %v", frames)
	}
	for i, f := range frames {
		if f != time.Duration(i+1)*time.Second {
			t.Errorf("frame %d at %v", i, f)
		}
	}
}

func TestVirtualCancel(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	id := v.After(time.Second, func() { fired = true })
	if !v.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if v.Cancel(id) {
		t.Error("double Cancel returned true")
	}
	v.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if v.Cancel(EventID(9999)) {
		t.Error("Cancel of unknown id returned true")
	}
}

func TestVirtualCancelAfterFire(t *testing.T) {
	v := NewVirtual(epoch)
	id := v.After(time.Second, func() {})
	v.Run()
	if v.Cancel(id) {
		t.Error("Cancel after fire returned true")
	}
}

func TestVirtualPendingAndExecuted(t *testing.T) {
	v := NewVirtual(epoch)
	v.After(time.Second, func() {})
	id := v.After(2*time.Second, func() {})
	if v.Pending() != 2 {
		t.Errorf("Pending = %d", v.Pending())
	}
	v.Cancel(id)
	if v.Pending() != 1 {
		t.Errorf("Pending after cancel = %d", v.Pending())
	}
	v.Run()
	if v.Executed() != 1 {
		t.Errorf("Executed = %d", v.Executed())
	}
}

func TestVirtualRunUntil(t *testing.T) {
	v := NewVirtual(epoch)
	var ran []string
	v.After(time.Hour, func() { ran = append(ran, "early") })
	v.After(48*time.Hour, func() { ran = append(ran, "late") })
	v.RunUntil(epoch.Add(24 * time.Hour))
	if len(ran) != 1 || ran[0] != "early" {
		t.Errorf("ran = %v", ran)
	}
	// Clock must land exactly on the deadline (a 24-hour allocation ends on
	// time even if simulations would keep producing events).
	if !v.Now().Equal(epoch.Add(24 * time.Hour)) {
		t.Errorf("Now = %v", v.Now())
	}
	v.RunFor(30 * time.Hour)
	if len(ran) != 2 {
		t.Errorf("after RunFor ran = %v", ran)
	}
}

func TestVirtualPastSchedulingClamps(t *testing.T) {
	v := NewVirtual(epoch)
	v.After(time.Second, func() {
		v.At(epoch, func() {}) // in the past: must clamp, not rewind time
	})
	v.Run()
	if v.Now().Before(epoch.Add(time.Second)) {
		t.Errorf("time went backwards: %v", v.Now())
	}
}

func TestVirtualNegativeAfter(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	v.After(-time.Hour, func() { fired = true })
	v.Run()
	if !fired {
		t.Error("negative-delay event never fired")
	}
	if !v.Now().Equal(epoch) {
		t.Errorf("negative delay moved the clock: %v", v.Now())
	}
}

func TestTickerVirtual(t *testing.T) {
	v := NewVirtual(epoch)
	var ticks []time.Duration
	tk := NewTicker(v, 10*time.Minute, func(now time.Time) {
		ticks = append(ticks, now.Sub(epoch))
	})
	v.RunUntil(epoch.Add(35 * time.Minute))
	tk.Stop()
	v.Run()
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i, d := range ticks {
		if d != time.Duration(i+1)*10*time.Minute {
			t.Errorf("tick %d at %v", i, d)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	v := NewVirtual(epoch)
	n := 0
	var tk *Ticker
	tk = NewTicker(v, time.Second, func(time.Time) {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	v.Run()
	if n != 2 {
		t.Errorf("ticker fired %d times after Stop at 2", n)
	}
}

func TestRealClockAfterAndCancel(t *testing.T) {
	r := NewReal()
	var fired atomic.Bool
	done := make(chan struct{})
	r.After(5*time.Millisecond, func() { fired.Store(true); close(done) })
	id := r.After(time.Hour, func() { t.Error("canceled real event fired") })
	if !r.Cancel(id) {
		t.Error("Cancel of pending real timer returned false")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real timer never fired")
	}
	if !fired.Load() {
		t.Error("flag not set")
	}
	if r.Cancel(id) {
		t.Error("double cancel returned true")
	}
	if now := r.Now(); time.Since(now) > time.Minute {
		t.Errorf("Real.Now looks wrong: %v", now)
	}
}

func TestRealZeroValueUsable(t *testing.T) {
	var r Real
	done := make(chan struct{})
	r.After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("zero-value Real timer never fired")
	}
}

func TestPropertyVirtualTimeMonotone(t *testing.T) {
	// No matter the scheduling pattern, observed event times never decrease.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NewVirtual(epoch)
		last := epoch
		ok := true
		for i := 0; i < 50; i++ {
			v.After(time.Duration(rng.Intn(1000))*time.Millisecond, func() {
				if v.Now().Before(last) {
					ok = false
				}
				last = v.Now()
				if rng.Intn(3) == 0 {
					v.After(time.Duration(rng.Intn(500))*time.Millisecond, func() {
						if v.Now().Before(last) {
							ok = false
						}
						last = v.Now()
					})
				}
			})
		}
		v.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAllUncanceledEventsRun(t *testing.T) {
	f := func(delaysMs []uint16, cancelMask []bool) bool {
		v := NewVirtual(epoch)
		want := 0
		var ids []EventID
		ran := 0
		for _, d := range delaysMs {
			ids = append(ids, v.After(time.Duration(d)*time.Millisecond, func() { ran++ }))
		}
		for i, id := range ids {
			if i < len(cancelMask) && cancelMask[i] {
				v.Cancel(id)
			}
		}
		for i := range ids {
			if !(i < len(cancelMask) && cancelMask[i]) {
				want++
			}
		}
		v.Run()
		return ran == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

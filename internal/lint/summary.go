package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the shared interprocedural layer under the concurrency
// analyzers (goroutinelifecycle, lockorder, channeldiscipline). It builds,
// once per lint run, a module-wide set of per-function summaries — which
// locks a function acquires, which channels it sends on / receives from /
// closes, which goroutines it spawns, which WaitGroups it touches, and
// which buffered writers it fills or flushes — threaded through an
// approximate branch-aware walk that tracks the set of mutexes held at
// every event. A static call graph (direct calls and method calls resolved
// through go/types; function values and interface calls are opaque) links
// the summaries, and two fixpoints propagate facts across it:
//
//   - TransAcquire: the locks a function may acquire directly or through
//     any chain of module-internal calls — the input to the lock-order
//     graph;
//   - TransChanOp / TransBufWrite / TransFlush: whether a call performs a
//     blocking channel operation, buffers into a bufio.Writer, or flushes
//     one — the inputs to channeldiscipline.
//
// Identity is canonical, not syntactic: `s.mu` in one package and `c.shard.mu`
// in another both resolve to "kvstore.shardConn.mu" when the field is the
// same, which is what lets summaries compose across packages. Struct fields
// are keyed by their defining type; package-level vars by package; locals
// and parameters by declaration site (so a closure capturing its parent's
// channel shares the parent's key).
//
// The walk is deliberately approximate in the direction that keeps this
// repo's conventions checkable: branches whose every path terminates drop
// out of the merged state (so `mu.Lock(); if x { mu.Unlock(); return }` is
// still "held" afterwards), surviving branches union their held sets, and
// function literals that are merely passed as values contribute to the
// call graph for lifecycle evidence but not to lock propagation (callbacks
// in this codebase run after Unlock by convention — lockdiscipline keeps it
// that way).

// FuncID names one analysis unit: (*types.Func).FullName for declared
// functions and methods, parent$litN for function literals.
type FuncID string

// EventKind classifies one summary event.
type EventKind int

// Event kinds recorded by the summary walker.
const (
	EvCall     EventKind = iota // module-internal call (Callee set)
	EvAcquire                   // mutex Lock/RLock (Key = lock key)
	EvSend                      // channel send (Key = channel key)
	EvRecv                      // channel receive, range, or select comm
	EvClose                     // close(ch)
	EvSpawn                     // go statement (Callee = spawned unit or "")
	EvBufWrite                  // buffered write into a bufio.Writer
	EvFlush                     // bufio.Writer Flush
	EvWGWait                    // WaitGroup.Wait (Key = wg key) — blocks
	EvWGDone                    // WaitGroup.Done (deferred ones at deferredPos)
)

// Event is one recorded operation with the lock context it happens under.
type Event struct {
	Kind   EventKind
	Pos    token.Pos
	Key    string   // lock / channel / writer / waitgroup key
	Callee FuncID   // for EvCall and EvSpawn ("" = unresolvable/external)
	Ext    string   // display name of an external/unresolvable callee
	Held   []string // sorted lock keys held at this event
	// NonBlocking marks sends/receives inside a select that has a default
	// clause — they cannot stall the goroutine.
	NonBlocking bool
	// Ref marks EvCall edges to function literals that are only passed as
	// values (callbacks): part of the call graph for lifecycle evidence,
	// excluded from lock propagation.
	Ref bool
	// WGGuard names a WaitGroup whose Add precedes and Done follows this
	// event within the same function ("" if none) — the submitter-count
	// idiom that makes a send safe against a Wait-then-close shutdown.
	WGGuard string
}

// FuncSummary is the interprocedural fact sheet of one function or literal.
type FuncSummary struct {
	ID     FuncID
	Name   string // human-readable ("(*kvstore.pipe).writeLoop", "...$1")
	Pkg    *Package
	Pos    token.Pos
	Events []Event

	WGAdd  map[string]token.Pos // WaitGroup.Add sites
	WGDone map[string]bool      // WaitGroup.Done called (incl. deferred)
	WGWait map[string]token.Pos // WaitGroup.Wait sites

	RecvKeys  map[string]bool // channels received from ("#ctx" = ctx.Done)
	CloseKeys map[string]token.Pos

	// Fixpoint results (BuildSummaries fills these in):
	TransAcquire map[string]token.Pos // locks acquired transitively
	TransChanOp  *ChanOpRef           // a blocking chan op reachable via calls
	TransWrites  map[string]bool      // writer keys buffered into, transitively
	TransFlushes map[string]bool      // writer keys flushed, transitively
}

// ChanOpRef points at one blocking channel operation for diagnostics.
type ChanOpRef struct {
	Kind EventKind
	Key  string
	Fn   *FuncSummary
	Pos  token.Pos
}

// Summaries is the module-wide index the concurrency analyzers query.
type Summaries struct {
	Fns   map[FuncID]*FuncSummary
	Order []FuncID // deterministic iteration order

	ChanBuffered map[string]bool           // channel key -> made with capacity > 0
	ChanClosers  map[string][]*FuncSummary // channel key -> closing functions
	ChanSenders  map[string][]*FuncSummary
	ChanRecvers  map[string][]*FuncSummary
	WGWaiters    map[string][]*FuncSummary // waitgroup key -> waiting functions
	Callers      map[FuncID][]FuncID       // reverse call graph (incl. Ref and Spawn)
}

// Fn returns the summary for id (nil if unknown).
func (s *Summaries) Fn(id FuncID) *FuncSummary { return s.Fns[id] }

// BuildSummaries walks every package and computes the fixpoints. pkgs must
// be type-checked; order does not matter.
func BuildSummaries(pkgs []*Package) *Summaries {
	s := &Summaries{
		Fns:          map[FuncID]*FuncSummary{},
		ChanBuffered: map[string]bool{},
		ChanClosers:  map[string][]*FuncSummary{},
		ChanSenders:  map[string][]*FuncSummary{},
		ChanRecvers:  map[string][]*FuncSummary{},
		WGWaiters:    map[string][]*FuncSummary{},
		Callers:      map[FuncID][]FuncID{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				b := &sumBuilder{sums: s, pkg: pkg, walked: map[*ast.FuncLit]bool{}}
				id, name := declID(pkg, fd)
				b.walkFunc(id, name, fd.Name.Pos(), fd.Body)
			}
		}
	}
	s.index()
	s.fixpoint()
	return s
}

// declID derives the FuncID and display name of a declared function.
func declID(pkg *Package, fd *ast.FuncDecl) (FuncID, string) {
	if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		full := obj.FullName()
		return FuncID(full), shortName(full)
	}
	// Unresolvable (init funcs resolve fine; this is a safety net).
	return FuncID(pkg.ImportPath + "." + fd.Name.Name), pkgBase(pkg.ImportPath) + "." + fd.Name.Name
}

// shortName compresses a FullName for human output: the module prefix of
// every import path is dropped ("(*mummi/internal/kvstore.pipe).writeLoop"
// -> "(*kvstore.pipe).writeLoop").
func shortName(full string) string {
	out := full
	for {
		i := strings.Index(out, "internal/")
		if i < 0 {
			return out
		}
		// Strip everything from the start of the path segment to internal/.
		j := i
		for j > 0 && out[j-1] != '(' && out[j-1] != '*' && out[j-1] != ' ' && out[j-1] != ',' {
			j--
		}
		out = out[:j] + out[i+len("internal/"):]
	}
}

func pkgBase(path string) string { return filepath.Base(path) }

// index fills the module-wide reverse maps after all walks.
func (s *Summaries) index() {
	for id := range s.Fns {
		s.Order = append(s.Order, id)
	}
	sort.Slice(s.Order, func(i, j int) bool { return s.Order[i] < s.Order[j] })
	for _, id := range s.Order {
		fn := s.Fns[id]
		for k := range fn.RecvKeys {
			s.ChanRecvers[k] = append(s.ChanRecvers[k], fn)
		}
		for k := range fn.CloseKeys {
			s.ChanClosers[k] = append(s.ChanClosers[k], fn)
		}
		for k := range fn.WGWait {
			s.WGWaiters[k] = append(s.WGWaiters[k], fn)
		}
		for _, ev := range fn.Events {
			switch ev.Kind {
			case EvSend:
				s.ChanSenders[ev.Key] = appendUniqueFn(s.ChanSenders[ev.Key], fn)
			case EvCall, EvSpawn:
				if ev.Callee != "" {
					s.Callers[ev.Callee] = append(s.Callers[ev.Callee], id)
				}
			}
		}
	}
}

func appendUniqueFn(list []*FuncSummary, fn *FuncSummary) []*FuncSummary {
	for _, f := range list {
		if f == fn {
			return list
		}
	}
	return append(list, fn)
}

// fixpoint propagates TransAcquire / TransChanOp / TransWrites /
// TransFlushes over the call graph until stable. The graph is small (one
// node per function in the module) so a simple iterate-until-quiet loop is
// plenty.
func (s *Summaries) fixpoint() {
	for _, id := range s.Order {
		fn := s.Fns[id]
		fn.TransAcquire = map[string]token.Pos{}
		fn.TransWrites = map[string]bool{}
		fn.TransFlushes = map[string]bool{}
		for _, ev := range fn.Events {
			switch ev.Kind {
			case EvAcquire:
				if _, ok := fn.TransAcquire[ev.Key]; !ok {
					fn.TransAcquire[ev.Key] = ev.Pos
				}
			case EvSend, EvRecv, EvWGWait:
				// All three block indefinitely on another goroutine's
				// progress; any of them reached under a held lock is a
				// deadlock surface.
				if !ev.NonBlocking && fn.TransChanOp == nil {
					fn.TransChanOp = &ChanOpRef{Kind: ev.Kind, Key: ev.Key, Fn: fn, Pos: ev.Pos}
				}
			case EvBufWrite:
				fn.TransWrites[ev.Key] = true
			case EvFlush:
				fn.TransFlushes[ev.Key] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range s.Order {
			fn := s.Fns[id]
			for _, ev := range fn.Events {
				if ev.Kind != EvCall || ev.Callee == "" || ev.Ref {
					continue
				}
				callee := s.Fns[ev.Callee]
				if callee == nil {
					continue
				}
				for k, p := range callee.TransAcquire {
					if _, ok := fn.TransAcquire[k]; !ok {
						// Attribute the transitive acquisition to the call site.
						_ = p
						fn.TransAcquire[k] = ev.Pos
						changed = true
					}
				}
				if fn.TransChanOp == nil && callee.TransChanOp != nil {
					fn.TransChanOp = callee.TransChanOp
					changed = true
				}
				// Writer facts keyed to the callee's own locals/params
				// (position keys, "file.go:NN:name") are meaningless to the
				// caller and are not propagated: the call site's argument
				// detection already recorded the write under the caller's
				// canonical key.
				for k := range callee.TransWrites {
					if !localKey(k) && !fn.TransWrites[k] {
						fn.TransWrites[k] = true
						changed = true
					}
				}
				for k := range callee.TransFlushes {
					if !localKey(k) && !fn.TransFlushes[k] {
						fn.TransFlushes[k] = true
						changed = true
					}
				}
			}
		}
	}
}

// CalleeClosure returns the summaries reachable from id through call,
// spawn, and reference edges, within depth hops — the evidence-search
// neighborhood for goroutinelifecycle.
func (s *Summaries) CalleeClosure(id FuncID, depth int) []*FuncSummary {
	seen := map[FuncID]bool{}
	var out []*FuncSummary
	var visit func(FuncID, int)
	visit = func(cur FuncID, d int) {
		if seen[cur] || d < 0 {
			return
		}
		seen[cur] = true
		fn := s.Fns[cur]
		if fn == nil {
			return
		}
		out = append(out, fn)
		for _, ev := range fn.Events {
			if (ev.Kind == EvCall || ev.Kind == EvSpawn) && ev.Callee != "" {
				visit(ev.Callee, d-1)
			}
		}
	}
	visit(id, depth)
	return out
}

// ---------------------------------------------------------------------------
// The walker

// sumBuilder walks one declared function (and, recursively, its literals),
// producing summaries. Lock facts are threaded exactly like lockdiscipline's
// walker but merged by union, and every interesting operation is recorded
// as an Event with the held set at that point.
type sumBuilder struct {
	sums *Summaries
	pkg  *Package

	cur    *FuncSummary
	nLit   int
	parent FuncID // enclosing unit while walking a literal
	// walked prevents double-walking literals that a parent construct
	// (call, defer, go) already analyzed before ast.Inspect descends.
	walked map[*ast.FuncLit]bool
}

type sumFacts map[string]bool // held lock keys

func (f sumFacts) clone() sumFacts {
	out := make(sumFacts, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

func (f sumFacts) sorted() []string {
	if len(f) == 0 {
		return nil
	}
	out := make([]string, 0, len(f))
	for k := range f {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// walkFunc creates the summary for one unit and walks its body.
func (b *sumBuilder) walkFunc(id FuncID, name string, pos token.Pos, body *ast.BlockStmt) {
	prev, prevParent, prevN := b.cur, b.parent, b.nLit
	b.cur = &FuncSummary{
		ID: id, Name: name, Pkg: b.pkg, Pos: pos,
		WGAdd:     map[string]token.Pos{},
		WGDone:    map[string]bool{},
		WGWait:    map[string]token.Pos{},
		RecvKeys:  map[string]bool{},
		CloseKeys: map[string]token.Pos{},
	}
	b.parent, b.nLit = id, 0
	b.sums.Fns[id] = b.cur
	b.walkStmts(body.List, sumFacts{})
	b.cur, b.parent, b.nLit = prev, prevParent, prevN
}

func (b *sumBuilder) emit(ev Event, f sumFacts) {
	ev.Held = f.sorted()
	b.cur.Events = append(b.cur.Events, ev)
}

// walkStmts threads facts through a list; the bool reports definite exit.
func (b *sumBuilder) walkStmts(stmts []ast.Stmt, f sumFacts) (sumFacts, bool) {
	for _, s := range stmts {
		var term bool
		f, term = b.walkStmt(s, f)
		if term {
			return f, true
		}
	}
	return f, false
}

func (b *sumBuilder) walkStmt(s ast.Stmt, f sumFacts) (sumFacts, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op, ok := b.lockOp(call); ok {
				b.applyLock(f, key, op, call.Pos())
				return f, false
			}
			if isPanic(call) {
				b.scanExpr(s.X, f)
				return f, true
			}
		}
		b.scanExpr(s.X, f)
	case *ast.DeferStmt:
		b.applyDefer(f, s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			b.scanExpr(r, f)
		}
		return f, true
	case *ast.BranchStmt:
		return f, true
	case *ast.IfStmt:
		if s.Init != nil {
			f, _ = b.walkStmt(s.Init, f)
		}
		b.scanExpr(s.Cond, f)
		thenF, thenT := b.walkStmts(s.Body.List, f.clone())
		var branches []sumBranch
		branches = append(branches, sumBranch{thenF, thenT})
		if s.Else != nil {
			elseF, elseT := b.walkStmt(s.Else, f.clone())
			branches = append(branches, sumBranch{elseF, elseT})
		} else {
			branches = append(branches, sumBranch{f, false})
		}
		return mergeSum(branches)
	case *ast.BlockStmt:
		return b.walkStmts(s.List, f)
	case *ast.LabeledStmt:
		return b.walkStmt(s.Stmt, f)
	case *ast.SwitchStmt:
		if s.Init != nil {
			f, _ = b.walkStmt(s.Init, f)
		}
		if s.Tag != nil {
			b.scanExpr(s.Tag, f)
		}
		return b.walkCases(s.Body, f)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			f, _ = b.walkStmt(s.Init, f)
		}
		return b.walkCases(s.Body, f)
	case *ast.SelectStmt:
		return b.walkSelect(s, f)
	case *ast.ForStmt:
		if s.Init != nil {
			f, _ = b.walkStmt(s.Init, f)
		}
		if s.Cond != nil {
			b.scanExpr(s.Cond, f)
		}
		bodyF, _ := b.walkStmts(s.Body.List, f.clone())
		return unionFacts(f, bodyF), false
	case *ast.RangeStmt:
		if t := b.typeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				key := b.exprKey(s.X)
				b.cur.RecvKeys[key] = true
				b.emit(Event{Kind: EvRecv, Pos: s.For, Key: key}, f)
			}
		}
		b.scanExpr(s.X, f)
		bodyF, _ := b.walkStmts(s.Body.List, f.clone())
		return unionFacts(f, bodyF), false
	case *ast.SendStmt:
		b.recordSend(s, f, false)
		b.scanExpr(s.Value, f)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			b.scanExpr(e, f)
		}
		b.recordChanMakes(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						b.scanExpr(v, f)
						if i < len(vs.Names) {
							b.recordChanMakeTo(vs.Names[i], v)
						}
					}
				}
			}
		}
	case *ast.GoStmt:
		b.recordSpawn(s, f)
	case *ast.IncDecStmt, *ast.EmptyStmt:
	}
	return f, false
}

type sumBranch struct {
	facts sumFacts
	term  bool
}

// mergeSum unions the surviving branches (terminated branches drop out).
func mergeSum(branches []sumBranch) (sumFacts, bool) {
	var out sumFacts
	for _, br := range branches {
		if br.term {
			continue
		}
		if out == nil {
			out = br.facts
		} else {
			out = unionFacts(out, br.facts)
		}
	}
	if out == nil {
		return sumFacts{}, true
	}
	return out, false
}

func unionFacts(a, b sumFacts) sumFacts {
	out := a.clone()
	for k := range b {
		out[k] = true
	}
	return out
}

func (b *sumBuilder) walkCases(body *ast.BlockStmt, f sumFacts) (sumFacts, bool) {
	var branches []sumBranch
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		bf, bt := b.walkStmts(cc.Body, f.clone())
		branches = append(branches, sumBranch{bf, bt})
	}
	if !hasDefault {
		branches = append(branches, sumBranch{f, false})
	}
	return mergeSum(branches)
}

func (b *sumBuilder) walkSelect(s *ast.SelectStmt, f sumFacts) (sumFacts, bool) {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	var branches []sumBranch
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		cf := f.clone()
		if cc.Comm != nil {
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				b.recordSendWith(comm, cf, hasDefault)
			case *ast.ExprStmt:
				b.recordRecvExpr(comm.X, cf, hasDefault)
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					b.recordRecvExpr(rhs, cf, hasDefault)
				}
			}
		}
		bf, bt := b.walkStmts(cc.Body, cf)
		branches = append(branches, sumBranch{bf, bt})
	}
	if !hasDefault {
		branches = append(branches, sumBranch{f, false})
	}
	return mergeSum(branches)
}

func (b *sumBuilder) recordSend(s *ast.SendStmt, f sumFacts, nonBlocking bool) {
	b.recordSendWith(s, f, nonBlocking)
}

func (b *sumBuilder) recordSendWith(s *ast.SendStmt, f sumFacts, nonBlocking bool) {
	key := b.exprKey(s.Chan)
	b.emit(Event{Kind: EvSend, Pos: s.Arrow, Key: key, NonBlocking: nonBlocking}, f)
}

// recordRecvExpr registers `<-ch` appearing as a select communication.
func (b *sumBuilder) recordRecvExpr(e ast.Expr, f sumFacts, nonBlocking bool) {
	ue, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || ue.Op != token.ARROW {
		return
	}
	key := b.recvKeyOf(ue.X)
	b.cur.RecvKeys[key] = true
	b.emit(Event{Kind: EvRecv, Pos: ue.OpPos, Key: key, NonBlocking: nonBlocking}, f)
}

// recvKeyOf keys the operand of a receive; <-ctx.Done() maps to "#ctx".
func (b *sumBuilder) recvKeyOf(x ast.Expr) string {
	if call, ok := ast.Unparen(x).(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if fn, ok := b.pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
				fn.Pkg().Path() == "context" {
				return "#ctx"
			}
		}
	}
	return b.exprKey(x)
}

// recordSpawn registers a go statement and resolves its target.
func (b *sumBuilder) recordSpawn(s *ast.GoStmt, f sumFacts) {
	for _, a := range s.Call.Args {
		b.scanExpr(a, f)
	}
	switch fun := ast.Unparen(s.Call.Fun).(type) {
	case *ast.FuncLit:
		litID := b.walkLit(fun)
		b.emit(Event{Kind: EvSpawn, Pos: s.Go, Callee: litID}, f)
	default:
		id, ext := b.resolveCallee(s.Call)
		b.emit(Event{Kind: EvSpawn, Pos: s.Go, Callee: id, Ext: ext}, f)
	}
}

// walkLit analyzes a function literal as its own unit (empty entry facts)
// and returns its FuncID.
func (b *sumBuilder) walkLit(fl *ast.FuncLit) FuncID {
	b.walked[fl] = true
	b.nLit++
	litID := FuncID(fmt.Sprintf("%s$%d", b.parent, b.nLit))
	name := fmt.Sprintf("%s$%d", b.cur.Name, b.nLit)
	parentCur, parentN := b.cur, b.nLit
	b.walkFunc(litID, name, fl.Pos(), fl.Body)
	b.cur, b.nLit = parentCur, parentN
	return litID
}

// applyDefer mirrors lockdiscipline: deferred unlocks keep the lock "held"
// for the remainder of the body (it really is), deferred Done/close are
// recorded as end-of-function facts, and other deferred calls become
// lock-free call edges (they run at return, usually after unlocks).
func (b *sumBuilder) applyDefer(f sumFacts, d *ast.DeferStmt) {
	if key, op, ok := b.lockOp(d.Call); ok {
		// A deferred Lock would be bizarre; deferred Unlock keeps facts as-is.
		_ = key
		_ = op
		return
	}
	if wgKey, op, ok := b.wgOp(d.Call); ok {
		b.applyWG(wgKey, op, d.Call.Pos(), deferredPos, f)
		return
	}
	if isCloseCall(d.Call) && len(d.Call.Args) == 1 {
		key := b.exprKey(d.Call.Args[0])
		b.cur.CloseKeys[key] = d.Call.Pos()
		b.emit(Event{Kind: EvClose, Pos: d.Call.Pos(), Key: key}, sumFacts{})
		return
	}
	if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
		litID := b.walkLit(fl)
		b.emit(Event{Kind: EvCall, Pos: d.Call.Pos(), Callee: litID}, sumFacts{})
		return
	}
	if id, ext := b.resolveCallee(d.Call); id != "" || ext != "" {
		b.emit(Event{Kind: EvCall, Pos: d.Call.Pos(), Callee: id, Ext: ext}, sumFacts{})
	}
}

// deferredPos is the sentinel position for facts established by defer: they
// take effect after every other position in the function.
const deferredPos = token.Pos(1 << 30)

// scanExpr records calls, receives, literals, and buffered writes inside an
// expression evaluated under facts f.
func (b *sumBuilder) scanExpr(e ast.Expr, f sumFacts) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if b.walked[n] {
				return false
			}
			litID := b.walkLit(n)
			// Passed or assigned, not invoked here: reference edge only.
			b.emit(Event{Kind: EvCall, Pos: n.Pos(), Callee: litID, Ref: true}, f)
			return false
		case *ast.CompositeLit:
			b.registerCompositeChans(n)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				key := b.recvKeyOf(n.X)
				b.cur.RecvKeys[key] = true
				b.emit(Event{Kind: EvRecv, Pos: n.OpPos, Key: key}, f)
			}
		case *ast.CallExpr:
			b.recordCall(n, f)
		}
		return true
	})
}

// recordCall classifies one call expression: lock ops are handled by the
// statement walker (they mutate facts); everything else becomes events.
func (b *sumBuilder) recordCall(call *ast.CallExpr, f sumFacts) {
	if _, _, ok := b.lockOp(call); ok {
		return // handled structurally where it appears as a statement
	}
	if key, op, ok := b.wgOp(call); ok {
		b.applyWG(key, op, call.Pos(), call.Pos(), f)
		return
	}
	if isCloseCall(call) && len(call.Args) == 1 {
		key := b.exprKey(call.Args[0])
		b.cur.CloseKeys[key] = call.Pos()
		b.emit(Event{Kind: EvClose, Pos: call.Pos(), Key: key}, f)
		return
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately-invoked literal: real call edge under current facts.
		litID := b.walkLit(fl)
		b.emit(Event{Kind: EvCall, Pos: call.Pos(), Callee: litID}, f)
		return
	}
	if wkey, isFlush, ok := b.bufWriterOp(call); ok {
		kind := EvBufWrite
		if isFlush {
			kind = EvFlush
		}
		b.emit(Event{Kind: kind, Pos: call.Pos(), Key: wkey}, f)
		// A write helper taking the writer as an argument is also a module
		// call; fall through so the call edge is recorded too.
	}
	if id, ext := b.resolveCallee(call); id != "" {
		b.emit(Event{Kind: EvCall, Pos: call.Pos(), Callee: id, Ext: ext}, f)
	}
}

// resolveCallee maps a call to a module-internal FuncID, or an external
// display name.
func (b *sumBuilder) resolveCallee(call *ast.CallExpr) (FuncID, string) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = b.pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = b.pkg.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", ""
	}
	full := fn.FullName()
	if fn.Pkg() != nil && isModulePath(fn.Pkg().Path()) {
		return FuncID(full), shortName(full)
	}
	return "", full
}

// isModulePath reports whether path is inside the module under analysis.
// The module path itself varies (real repo vs. golden fixtures), so the
// test is structural: anything that is not a stdlib path. Stdlib paths
// never contain a dot in their first segment, and the golden fixtures use
// "lab/..." which has no dot either — so the discriminator is: a path is
// internal iff some loaded package declared it. That check happens at
// lookup time (Summaries.Fns), so here every non-stdlib-shaped candidate
// is allowed through; unresolved IDs simply have no summary.
func isModulePath(path string) bool {
	if path == "" {
		return false
	}
	// Stdlib heuristic: single-segment or golang.org/x paths are external.
	switch strings.Split(path, "/")[0] {
	case "archive", "bufio", "bytes", "cmp", "compress", "container", "context",
		"crypto", "database", "debug", "embed", "encoding", "errors", "expvar",
		"flag", "fmt", "go", "hash", "html", "image", "index", "io", "iter",
		"log", "maps", "math", "mime", "net", "os", "path", "plugin", "reflect",
		"regexp", "runtime", "slices", "sort", "strconv", "strings", "structs",
		"sync", "syscall", "testing", "text", "time", "unicode", "unique",
		"unsafe", "weak", "golang.org":
		return false
	}
	return true
}

// ---------------------------------------------------------------------------
// Operation classifiers

// lockOp recognizes mutex Lock/RLock/Unlock/RUnlock (sync package).
func (b *sumBuilder) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := b.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return b.exprKey(sel.X), sel.Sel.Name, true
}

func (b *sumBuilder) applyLock(f sumFacts, key, op string, pos token.Pos) {
	switch op {
	case "Lock", "RLock":
		b.emit(Event{Kind: EvAcquire, Pos: pos, Key: key}, f)
		f[key] = true
	case "Unlock", "RUnlock":
		delete(f, key)
	}
}

// wgOp recognizes WaitGroup Add/Done/Wait.
func (b *sumBuilder) wgOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return "", "", false
	}
	fn, isFn := b.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !strings.Contains(recv.Type().String(), "WaitGroup") {
		return "", "", false
	}
	return b.exprKey(sel.X), sel.Sel.Name, true
}

func (b *sumBuilder) applyWG(key, op string, pos, effPos token.Pos, f sumFacts) {
	switch op {
	case "Add":
		if _, ok := b.cur.WGAdd[key]; !ok {
			b.cur.WGAdd[key] = pos
		}
	case "Done":
		b.cur.WGDone[key] = true
		// Recorded with its effective position (deferred Done runs at
		// return) so WG-guarded sends can check ordering.
		b.emit(Event{Kind: EvWGDone, Pos: effPos, Key: key}, f)
	case "Wait":
		if _, ok := b.cur.WGWait[key]; !ok {
			b.cur.WGWait[key] = pos
		}
		b.emit(Event{Kind: EvWGWait, Pos: pos, Key: key}, f)
	}
}

// bufWriterOp classifies calls that touch a *bufio.Writer: a method call on
// one (Flush vs. the Write* family) or a helper call taking one as an
// argument (counted as a buffered write into it).
func (b *sumBuilder) bufWriterOp(call *ast.CallExpr) (key string, isFlush, ok bool) {
	if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
		if t := b.typeOf(sel.X); t != nil && isBufioWriter(t) {
			return b.exprKey(sel.X), sel.Sel.Name == "Flush", true
		}
	}
	for _, arg := range call.Args {
		if t := b.typeOf(arg); t != nil && isBufioWriter(t) {
			return b.exprKey(arg), false, true
		}
	}
	return "", false, false
}

func isBufioWriter(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "bufio" && obj.Name() == "Writer"
}

func isCloseCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "close"
}

// recordChanMakes registers `x := make(chan T, n)` buffered-ness.
func (b *sumBuilder) recordChanMakes(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Rhs {
		b.recordChanMakeTo(as.Lhs[i], as.Rhs[i])
	}
}

func (b *sumBuilder) recordChanMakeTo(lhs, rhs ast.Expr) {
	buffered, ok := b.chanMake(rhs)
	if !ok {
		return
	}
	key := b.exprKey(lhs)
	if buffered {
		b.sums.ChanBuffered[key] = true
	}
}

// chanMake reports whether rhs is make(chan ...) and whether it is buffered
// (a capacity argument that is not the constant 0).
func (b *sumBuilder) chanMake(rhs ast.Expr) (buffered, ok bool) {
	call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
	if !isCall {
		return false, false
	}
	id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent || id.Name != "make" || len(call.Args) == 0 {
		return false, false
	}
	if t := b.typeOf(call); t == nil {
		return false, false
	} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return false, false
	}
	if len(call.Args) < 2 {
		return false, true
	}
	if tv, okTV := b.pkg.Info.Types[call.Args[1]]; okTV && tv.Value != nil && tv.Value.String() == "0" {
		return false, true
	}
	return true, true
}

// registerCompositeChans scans a composite literal for channel-typed field
// values built with make — &pipe{reqCh: make(chan *call, n)}.
func (b *sumBuilder) registerCompositeChans(cl *ast.CompositeLit) {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		buffered, isMake := b.chanMake(kv.Value)
		if !isMake {
			continue
		}
		keyIdent, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		// Key by the struct type owning the field.
		if t := b.typeOf(cl); t != nil {
			if k := typeFieldKey(t, keyIdent.Name); k != "" && buffered {
				b.sums.ChanBuffered[k] = true
			}
		}
	}
}

func (b *sumBuilder) typeOf(e ast.Expr) types.Type {
	if b.pkg.Info == nil {
		return nil
	}
	return b.pkg.Info.TypeOf(e)
}

// ---------------------------------------------------------------------------
// Canonical keys

// exprKey canonicalizes the identity of a lock, channel, WaitGroup, or
// writer expression so that summaries compose across functions and
// packages. Struct fields key by defining type ("kvstore.pipe.reqCh"),
// package-level vars by package, locals and params by declaration site.
func (b *sumBuilder) exprKey(e ast.Expr) string {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if base := b.typeOf(e.X); base != nil {
			if k := typeFieldKey(base, e.Sel.Name); k != "" {
				return k
			}
		}
		return types.ExprString(e)
	case *ast.Ident:
		obj := b.pkg.Info.Uses[e]
		if obj == nil {
			obj = b.pkg.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name()
			}
			// Declaration-site key: a closure capturing its parent's local
			// resolves the same *types.Var, hence the same key.
			pos := b.pkg.Fset.Position(v.Pos())
			return fmt.Sprintf("%s:%d:%s", filepath.Base(pos.Filename), pos.Line, v.Name())
		}
		return e.Name
	case *ast.StarExpr:
		return b.exprKey(e.X)
	case *ast.IndexExpr:
		return b.exprKey(e.X) + "[]"
	}
	return types.ExprString(e)
}

// localKey reports whether a canonical key names a local or parameter
// (declaration-site keyed, "file.go:NN:name") rather than a struct field
// or package-level variable.
func localKey(k string) bool { return strings.Contains(k, ":") }

// typeFieldKey keys a field of a named struct type: "pkg.Type.field".
// Returns "" if the base type is not a named struct with that field.
func typeFieldKey(base types.Type, field string) string {
	for {
		if p, ok := base.(*types.Pointer); ok {
			base = p.Elem()
			continue
		}
		break
	}
	named, ok := base.(*types.Named)
	if !ok {
		return ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			obj := named.Obj()
			pkg := ""
			if obj.Pkg() != nil {
				pkg = obj.Pkg().Name() + "."
			}
			return pkg + obj.Name() + "." + field
		}
	}
	// The selector may be a method or promoted field; fall back to the type.
	obj := named.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name() + "."
	}
	return pkg + obj.Name() + "." + field
}

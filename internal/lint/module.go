package lint

import (
	"fmt"
	"go/token"
)

// ModuleAnalyzer is an interprocedural invariant checker: unlike Analyzer
// it sees every package in the module at once, through the shared summary
// layer (summary.go), because the properties it checks — goroutine
// join paths, lock-acquisition order, channel close/send races — only
// exist across function and package boundaries.
type ModuleAnalyzer struct {
	Name string
	Doc  string
	// Scope decides which packages' code may be *reported on*. Summaries
	// are always built for the whole module (facts propagate through
	// unscoped code), but findings are anchored to scoped packages only.
	Scope func(pkgPath string) bool
	Run   func(*ModulePass)
}

// ModulePass carries the whole module through one module analyzer.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Pkgs     []*Package
	Sums     *Summaries

	// matched restricts reporting to the packages selected by the driver's
	// patterns (nil = all).
	matched map[string]bool
	diags   []Diagnostic
}

// InScope reports whether findings may be anchored in pkgPath.
func (p *ModulePass) InScope(pkgPath string) bool {
	if p.Analyzer.Scope != nil && !p.Analyzer.Scope(pkgPath) {
		return false
	}
	if p.matched != nil && !p.matched[pkgPath] {
		return false
	}
	return true
}

// Reportf records a finding anchored inside fn; out-of-scope anchors are
// dropped (the fact may involve unscoped code, the report may not live
// there).
func (p *ModulePass) Reportf(fn *FuncSummary, pos token.Pos, format string, args ...any) {
	if fn == nil || !p.InScope(fn.Pkg.ImportPath) {
		return
	}
	position := fn.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// AllModule returns the module-analyzer suite in reporting order.
func AllModule() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{GoroutineLifecycle, LockOrder, ChannelDiscipline}
}

// SelectAnalyzers resolves a comma-separated analyzer list that may mix
// per-package and module analyzers. An empty list selects everything.
func SelectAnalyzers(names string) ([]*Analyzer, []*ModuleAnalyzer, error) {
	if names == "" {
		return All(), AllModule(), nil
	}
	var pas []*Analyzer
	var mas []*ModuleAnalyzer
	for _, n := range splitNames(names) {
		found := false
		for _, a := range All() {
			if a.Name == n {
				pas = append(pas, a)
				found = true
			}
		}
		for _, a := range AllModule() {
			if a.Name == n {
				mas = append(mas, a)
				found = true
			}
		}
		if !found {
			return nil, nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return pas, mas, nil
}

// RunModuleAnalyzers applies module analyzers over pre-built summaries and
// returns raw (unsuppressed, unsorted) findings. The golden tests use this
// directly; the driver entry point is Module.Run.
func RunModuleAnalyzers(pkgs []*Package, sums *Summaries, analyzers []*ModuleAnalyzer, matched map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &ModulePass{Analyzer: a, Pkgs: pkgs, Sums: sums, matched: matched}
		a.Run(pass)
		out = append(out, pass.diags...)
	}
	return out
}

// RunOptions configures one whole-module lint run.
type RunOptions struct {
	Analyzers       []*Analyzer
	ModuleAnalyzers []*ModuleAnalyzer
	ErrAllow        []string
	// Patterns restricts which packages findings may be reported in
	// (./...-style, nil = all). Summaries and suppression bookkeeping still
	// cover the whole module.
	Patterns []string
	// UnusedSuppressions adds a synthetic "unused-suppression" finding for
	// every //lint:allow comment that suppressed nothing in this run.
	UnusedSuppressions bool
}

// Run is the single entry point the CLI and the self-clean test share: it
// runs the per-package and module analyzers, applies suppressions across
// both, and (optionally) reports stale suppressions.
func (m *Module) Run(opts RunOptions) []Diagnostic {
	matched := map[string]bool{}
	anyMatch := false
	for _, pkg := range m.Pkgs {
		if m.Match(pkg, opts.Patterns) {
			matched[pkg.ImportPath] = true
			anyMatch = true
		}
	}
	_ = anyMatch

	table := NewSuppressionTable()
	for _, pkg := range m.Pkgs {
		if matched[pkg.ImportPath] {
			table.Add(pkg.Fset, pkg.Files)
		}
	}

	var out []Diagnostic
	ran := map[string]bool{}
	for _, pkg := range m.Pkgs {
		if !matched[pkg.ImportPath] {
			continue
		}
		for _, a := range opts.Analyzers {
			if a.Scope != nil && !a.Scope(pkg.ImportPath) {
				continue
			}
			ran[a.Name] = true
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				ErrAllow: opts.ErrAllow,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				if !table.Allows(d) {
					out = append(out, d)
				}
			}
		}
	}

	if len(opts.ModuleAnalyzers) > 0 {
		sums := BuildSummaries(m.Pkgs)
		for _, a := range opts.ModuleAnalyzers {
			ran[a.Name] = true
		}
		for _, d := range RunModuleAnalyzers(m.Pkgs, sums, opts.ModuleAnalyzers, matched) {
			if !table.Allows(d) {
				out = append(out, d)
			}
		}
	}

	if opts.UnusedSuppressions {
		out = append(out, table.Unused(ran)...)
	}
	SortDiagnostics(out)
	return out
}

// Package dyn is analyzer test input: each `want "regex"` comment marks a
// line where the determinism analyzer must report, and every report must
// be matched by a want comment (see lint_test.go).
package dyn

import (
	"math/rand"
	"sort"
	"time"
)

// rankAll folds over a map in iteration order — the exact bug class that
// made selector replays diverge before PR 1.
func rankAll(scores map[string]float64) float64 {
	total := 0.0
	for _, v := range scores { // want "map iteration order is nondeterministic"
		total *= 0.5
		total += v
	}
	return total
}

func pick(n int) int {
	return rand.Intn(n) // want "global math/rand.Intn"
}

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func drain(a, b chan int) int {
	select { // want "select with 2 communication cases"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// sortedKeys is the sweep idiom — collect, sort, then use — and must NOT
// be flagged.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// seeded constructs a component-owned stream; constructors are exempt.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// suppressed shows the annotation escape hatch: no diagnostic may survive.
func suppressed(m map[int]int) int {
	n := 0
	//lint:allow determinism -- commutative count; iteration order cannot matter
	for range m {
		n++
	}
	return n
}

// Package lifecycle exercises the goroutinelifecycle analyzer: every go
// statement must have a provable join path (WaitGroup matched by a Wait,
// ctx.Done receive, or a close-signaled channel).
package lifecycle

import (
	"context"
	"sync"
)

// ---- bad: no join evidence anywhere in the spawned unit ----

func spawnLeaky() {
	go leaky() // want "no provable shutdown path"
}

func leaky() {
	n := 0
	for {
		n++
	}
}

// The literal ranges over a channel nobody closes: still unjoinable.
func spawnLitLeaky(c chan int) {
	go func() { // want "no provable shutdown path"
		for v := range c {
			_ = v
		}
	}()
}

// A dynamic function value cannot be audited at all.
func spawnDynamic(f func()) {
	go f() // want "cannot be resolved statically"
}

// ---- good: the WaitGroup join idiom ----

type worker struct {
	wg sync.WaitGroup
	n  int
}

func (w *worker) start() {
	w.wg.Add(1)
	go w.run()
}

func (w *worker) run() {
	defer w.wg.Done()
	w.n++
}

func (w *worker) stop() {
	w.wg.Wait()
}

// ---- good: context cancellation ----

func startWatch(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) {
	<-ctx.Done()
}

// ---- good: draining a channel that stop() closes ----

type queue struct {
	jobs chan int
	sum  int
}

func newQueue() *queue {
	q := &queue{jobs: make(chan int, 8)}
	go q.drain()
	return q
}

func (q *queue) drain() {
	for j := range q.jobs {
		q.sum += j
	}
}

func (q *queue) stop() {
	close(q.jobs)
}

// ---- good: closing a done channel that wait() receives from ----

type svc struct {
	done chan struct{}
}

func startSvc() *svc {
	s := &svc{done: make(chan struct{})}
	go s.loop()
	return s
}

func (s *svc) loop() {
	defer close(s.done)
}

func (s *svc) wait() {
	<-s.done
}

// Package a is the callee side of the interprocedural golden tests: its
// locks, channels, and blocking helpers are consumed by package b, so
// every finding (and every proof of safety) over there depends on summary
// propagation across the package boundary.
package a

import "sync"

// MuA and MuB are the two locks of the cross-package order cycle.
var (
	MuA sync.Mutex
	MuB sync.Mutex
)

// LockB acquires B; package b calls this while holding A.
func LockB() {
	MuB.Lock()
	defer MuB.Unlock()
}

// InverseOrder takes B then A directly — the other half of the cycle. The
// cycle itself is reported in package b, at its first witness edge.
func InverseOrder() {
	MuB.Lock()
	MuA.Lock()
	MuA.Unlock()
	MuB.Unlock()
}

// Recv blocks receiving; package b calls it under a lock.
func Recv(ch chan int) int {
	return <-ch
}

// Queue's drain goroutine is join-evidenced by Close — here — while the
// spawn lives in package b.
type Queue struct {
	Jobs chan int
	sum  int
}

// Drain consumes Jobs until Close.
func (q *Queue) Drain() {
	for j := range q.Jobs {
		q.sum += j
	}
}

// Close signals Drain to exit.
func (q *Queue) Close() {
	close(q.Jobs)
}

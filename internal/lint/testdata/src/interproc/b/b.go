// Package b is the caller side of the interprocedural golden tests: each
// case below is only decidable with package a's summaries in hand.
package b

import (
	"sync"

	a "lab/internal/core"
)

var mu sync.Mutex

// ForwardOrder holds A and calls into package a, which acquires B: with
// a.InverseOrder this closes a cross-package lock-order cycle.
func ForwardOrder() {
	a.MuA.Lock()
	a.LockB() // want "lock-order cycle"
	a.MuA.Unlock()
}

// LockedRecv calls a blocking helper from another package under a lock.
func LockedRecv(ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	return a.Recv(ch) // want "a blocking operation under the lock"
}

// StartDrain spawns a goroutine whose join evidence (Queue.Close) lives
// entirely in package a: no finding.
func StartDrain(q *a.Queue) {
	go q.Drain()
}

// Package doccomment is the golden input for the doccomment analyzer.
package doccomment

import "sync"

// Documented is fine.
type Documented struct {
	// fields are exempt: the type comment is the unit of documentation.
	Field int
	Other string
}

type Undocumented struct{} // want "exported type Undocumented has no doc comment"

// unexported types never need docs.
type internalOnly struct{}

// Grouped type declarations: the group doc covers every spec.
type (
	First  struct{}
	Second struct{}
)

type (
	Third struct{} // want "exported type Third has no doc comment"
)

// DocumentedFunc is fine.
func DocumentedFunc() {}

func UndocumentedFunc() {} // want "exported function UndocumentedFunc has no doc comment"

func unexportedFunc() {}

// Method docs: required on exported receiver types...
func (d *Documented) Documented() {}

func (d *Documented) Missing() {} // want "exported method Missing has no doc comment"

// ...but not on unexported receiver types, even for exported names.
func (i internalOnly) Exported() {}

// MaxThings is fine.
const MaxThings = 10

const MinThings = 1 // want "exported const MinThings has no doc comment"

// Grouped constants: the group comment suffices.
const (
	ModeA = "a"
	ModeB = "b"
)

const (
	// ModeC has a spec doc.
	ModeC = "c"
	ModeD = "d" // want "exported const ModeD has no doc comment"
	modeE = "e"
)

// ErrBudget is fine; directive-only comments do not count as docs.
var ErrBudget = 3

//go:generate true
var Generated = 4 // want "exported variable Generated has no doc comment"

var (
	// Known has a spec doc.
	Known sync.Mutex
	Blank int // want "exported variable Blank has no doc comment"
)

var hidden int

func init() { _, _, _, _ = MinThings, modeE, Generated, hidden }

// Package errprog is analyzer test input for errdiscipline (see
// lint_test.go). The harness runs it with an allowlist of {"os.RemoveAll"}.
package errprog

import (
	"os"
	"strings"
)

func bare(f *os.File) {
	f.Close() // want "bare call"
}

func blankAssign() {
	_ = os.Remove("x") // want "assigned to _"
}

func deferred(f *os.File) {
	defer f.Close() // want "deferred call"
}

func multiResult() {
	f, _ := os.Create("x") // want "assigned to _"
	_ = f
}

// allowedByBuiltin: (*strings.Builder).* is on the built-in allowlist
// because its methods are documented to never return an error.
func allowedByBuiltin(b *strings.Builder) {
	b.WriteString("ok")
}

// allowedByFile: os.RemoveAll is on the harness's allowlist.
func allowedByFile() {
	os.RemoveAll("scratch")
}

// suppressed shows the annotation escape hatch: no diagnostic may survive.
func suppressed(f *os.File) {
	f.Close() //lint:allow errdiscipline -- fixture: read-side close
}

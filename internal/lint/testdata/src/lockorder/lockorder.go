// Package lockorder exercises the module-wide lock-acquisition-order
// graph: inverted acquisition orders form a cycle (deadlock risk), and a
// call chain that re-enters a held lock is a guaranteed self-deadlock.
package lockorder

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

// abPath takes a then b; with baPath below this closes an order cycle.
// The cycle is reported once, at the witness of its first edge.
func (p *pair) abPath() {
	p.a.Lock()
	p.b.Lock() // want "lock-order cycle"
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

// baPath takes b then a — the inversion.
func (p *pair) baPath() {
	p.b.Lock()
	p.a.Lock()
	p.n++
	p.a.Unlock()
	p.b.Unlock()
}

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// doubled re-enters its own (non-reentrant) lock through get.
func (c *counter) doubled() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.get() * 2 // want "guaranteed self-deadlock"
}

type nested struct {
	outer sync.Mutex
	inner sync.Mutex
	n     int
}

// incr nests consistently (outer before inner, everywhere): no cycle.
func (n *nested) incr() {
	n.outer.Lock()
	n.inner.Lock()
	n.n++
	n.inner.Unlock()
	n.outer.Unlock()
}

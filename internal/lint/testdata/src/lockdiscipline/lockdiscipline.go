// Package wm is analyzer test input for lockdiscipline (see lint_test.go).
package wm

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
}

// leakOnReturn takes the lock but only releases it on one of two paths.
func (c *counter) leakOnReturn() int {
	c.mu.Lock()
	if c.n > 0 {
		c.mu.Unlock()
		return c.n
	}
	return 0 // want "still held"
}

// sleepUnderLock blocks every other workflow task for a millisecond.
func (c *counter) sleepUnderLock() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want "blocking operations under a mutex"
	c.mu.Unlock()
}

// doubleLock self-deadlocks on the second acquisition.
func (c *counter) doubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want "self-deadlock"
	c.mu.Unlock()
}

// valueReceiver copies the mutex with every call.
func (c counter) valueReceiver() int { // want "value receiver copies"
	return c.n
}

// copyByValue forks the lock state into an independent copy.
func copyByValue(c *counter) int {
	cp := *c // want "by-value copy"
	return cp.n
}

// deferred is the blessed §4.4 shape and must NOT be flagged.
func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// balancedBranches unlocks on both paths and must NOT be flagged.
func (c *counter) balancedBranches(x int) int {
	c.mu.Lock()
	if x > 0 {
		c.n += x
		c.mu.Unlock()
		return x
	}
	c.mu.Unlock()
	return 0
}

// suppressed shows the annotation escape hatch: no diagnostic may survive.
func (c *counter) suppressed() {
	c.mu.Lock()
	//lint:allow lockdiscipline -- fixture: demonstrating the suppression path
	time.Sleep(time.Microsecond)
	c.mu.Unlock()
}

// Package pipeline exercises the channeldiscipline analyzer: blocking
// channel ops under a held mutex, sends racing a close, and the
// flush-before-block discipline of pipelined writers.
package pipeline

import (
	"bufio"
	"sync"
)

// ---- rule 1: blocking channel ops under a held mutex ----

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) sendLocked(v int) {
	b.mu.Lock()
	b.ch <- v // want "blocking send on channel pipeline.box.ch while holding pipeline.box.mu"
	b.mu.Unlock()
}

func (b *box) recvOne() int {
	return <-b.ch
}

// The same bug one frame removed: the callee blocks on the channel.
func (b *box) lockedCall() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.recvOne() // want "a blocking operation under the lock"
}

// trySendLocked cannot stall: select-with-default is non-blocking.
func (b *box) trySendLocked(v int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- v:
		return true
	default:
		return false
	}
}

// ---- rule 2: sends racing a close ----

type racer struct {
	out chan int
}

// raceSend has no ordering guard against shutdown's close: a lost race
// panics with "send on closed channel".
func (r *racer) raceSend(v int) {
	r.out <- v // want "no ordering guard"
}

func (r *racer) shutdown() {
	close(r.out)
}

// wgpipe brackets every send with a submitter count the closer waits out —
// the async-client discipline; allowed.
type wgpipe struct {
	reqCh chan int
	subWg sync.WaitGroup
}

func (p *wgpipe) submit(v int) {
	p.subWg.Add(1)
	p.reqCh <- v
	p.subWg.Done()
}

func (p *wgpipe) close() {
	p.subWg.Wait()
	close(p.reqCh)
}

// mbox serializes sends and the close under one mutex; allowed.
type mbox struct {
	mu     sync.Mutex
	ch     chan int
	closed bool
}

func (m *mbox) trySend(v int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	select {
	case m.ch <- v:
	default:
	}
}

func (m *mbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	close(m.ch)
}

// owner only sends from the goroutine that also closes; allowed.
type owner struct {
	inflight chan int
}

func (o *owner) writeLoop() {
	for i := 0; i < 4; i++ {
		o.inflight <- i
	}
	close(o.inflight)
}

// ---- rule 3: flush-before-block (the pipelined-kvstore deadlock) ----

type wpipe struct {
	w        *bufio.Writer
	inflight chan int
}

func newWpipe(w *bufio.Writer) *wpipe {
	return &wpipe{w: w, inflight: make(chan int, 8)}
}

// writeOneBad blocks on the window with bytes still buffered: the replies
// that free slots can only arrive for commands that reached the wire.
func (p *wpipe) writeOneBad(v int) {
	_ = p.w.WriteByte(byte(v))
	p.inflight <- v // want "unflushed buffered writes"
}

// writeOneGood is the blessed idiom: try non-blocking, flush, then block.
func (p *wpipe) writeOneGood(v int) {
	_ = p.w.WriteByte(byte(v))
	select {
	case p.inflight <- v:
	default:
		p.flush()
		p.inflight <- v
	}
}

func (p *wpipe) flush() {
	_ = p.w.Flush()
}

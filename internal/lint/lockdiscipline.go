package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline mechanizes the §4.4 rule that the workflow manager's four
// tasks share state "under explicit locking": the WM and the scheduler mix
// blocking locks with nonblocking busy flags, and every past deadlock and
// state-corruption bug in that mix falls into one of three shapes, all
// checked here:
//
//  1. a mutex Lock() without an Unlock() on some return path (and without
//     a defer) — the classic leaked lock;
//  2. a blocking operation while a mutex is held: channel send/receive,
//     WaitGroup.Wait, time.Sleep, or datastore/network/file I/O — the
//     classic lock-convoy / deadlock seed (callbacks in this codebase are
//     deliberately invoked after Unlock; this analyzer keeps it that way);
//  3. copying a struct that contains a sync.Mutex/RWMutex by value — the
//     copy silently forks the lock.
//
// The lock-state analysis is intra-procedural and structural: it tracks
// held locks through if/else, switch, select, and loops, merging branch
// states and reporting when paths disagree. Helper functions documented
// as "caller holds mu" are therefore analyzed as lock-neutral, which
// matches the repo's convention.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "flags leaked locks, blocking operations under a held mutex, and by-value copies of lock-bearing structs",
	Scope: func(pkgPath string) bool {
		return strings.HasSuffix(pkgPath, "internal/core") ||
			strings.HasSuffix(pkgPath, "internal/sched") ||
			strings.HasSuffix(pkgPath, "internal/faults") ||
			strings.HasSuffix(pkgPath, "internal/kvstore") ||
			strings.HasSuffix(pkgPath, "internal/wmfleet")
	},
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	la := &lockAnalysis{pass: pass}
	for _, f := range pass.Files {
		// Every function body — declarations and literals — is analyzed as
		// an independent unit with an empty initial lock set.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				la.checkValueReceiver(n)
				if n.Body != nil {
					la.analyzeBody(n.Body)
				}
			case *ast.FuncLit:
				la.analyzeBody(n.Body)
			case *ast.CallExpr:
				if key, op, ok := la.lockOp(n); ok && strings.HasPrefix(op, "Try") {
					la.pass.Reportf(n.Pos(),
						"%s.%s() is untrackable by the structural lock analysis; restructure or annotate //lint:allow lockdiscipline", key, op)
				}
			}
			return true
		})
		la.checkCopies(f)
	}
}

type lockAnalysis struct {
	pass *Pass
}

// heldLock records one acquired mutex.
type heldLock struct {
	pos      token.Pos // acquisition site
	deferred bool      // a defer statement releases it at function exit
}

type lockFacts map[string]*heldLock // canonical receiver expr -> state

func (f lockFacts) clone() lockFacts {
	out := make(lockFacts, len(f))
	for k, v := range f {
		c := *v
		out[k] = &c
	}
	return out
}

// sameHeld reports whether two fact sets hold the same lock keys.
func sameHeld(a, b lockFacts) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func (la *lockAnalysis) analyzeBody(body *ast.BlockStmt) {
	facts, terminated := la.walkStmts(body.List, lockFacts{})
	if !terminated {
		la.checkExit(facts, body.Rbrace, "end of function")
	}
}

// checkExit reports locks still held (and not deferred-released) at a
// function exit point.
func (la *lockAnalysis) checkExit(f lockFacts, pos token.Pos, where string) {
	for key, h := range f {
		if h.deferred {
			continue
		}
		la.pass.Reportf(pos,
			"%s.Lock() (line %d) is still held at %s; unlock on every return path or defer the unlock",
			key, la.pass.Fset.Position(h.pos).Line, where)
	}
}

// walkStmts threads lock facts through a statement list. The returned bool
// reports whether control definitely leaves the list (return, panic,
// branch).
func (la *lockAnalysis) walkStmts(stmts []ast.Stmt, f lockFacts) (lockFacts, bool) {
	for _, s := range stmts {
		var term bool
		f, term = la.walkStmt(s, f)
		if term {
			return f, true
		}
	}
	return f, false
}

func (la *lockAnalysis) walkStmt(s ast.Stmt, f lockFacts) (lockFacts, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op, ok := la.lockOp(call); ok {
				la.applyLockOp(f, key, op, call.Pos())
				return f, false
			}
			if isPanic(call) {
				la.scanExpr(s.X, f)
				return f, true
			}
		}
		la.scanExpr(s.X, f)
	case *ast.DeferStmt:
		la.applyDefer(f, s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			la.scanExpr(r, f)
		}
		la.checkExit(f, s.Return, "this return")
		return f, true
	case *ast.BranchStmt:
		// break/continue/goto transfer control; treat as list-terminating
		// without an exit check (loop analysis re-checks invariance).
		return f, true
	case *ast.IfStmt:
		if s.Init != nil {
			f, _ = la.walkStmt(s.Init, f)
		}
		la.scanExpr(s.Cond, f)
		branches := make([]branchResult, 0, 2)
		thenF, thenT := la.walkStmts(s.Body.List, f.clone())
		branches = append(branches, branchResult{thenF, thenT})
		if s.Else != nil {
			elseF, elseT := la.walkStmt(s.Else, f.clone())
			branches = append(branches, branchResult{elseF, elseT})
		} else {
			branches = append(branches, branchResult{f, false})
		}
		return la.merge(branches, s.If, "if/else")
	case *ast.BlockStmt:
		return la.walkStmts(s.List, f)
	case *ast.LabeledStmt:
		return la.walkStmt(s.Stmt, f)
	case *ast.SwitchStmt:
		if s.Init != nil {
			f, _ = la.walkStmt(s.Init, f)
		}
		if s.Tag != nil {
			la.scanExpr(s.Tag, f)
		}
		return la.walkCases(s.Body, f, s.Switch, "switch")
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			f, _ = la.walkStmt(s.Init, f)
		}
		return la.walkCases(s.Body, f, s.Switch, "type switch")
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil && len(f) > 0 {
				la.reportBlocking(cc.Comm.Pos(), f, "select communication")
			}
		}
		return la.walkCases(s.Body, f, s.Select, "select")
	case *ast.ForStmt:
		if s.Init != nil {
			f, _ = la.walkStmt(s.Init, f)
		}
		if s.Cond != nil {
			la.scanExpr(s.Cond, f)
		}
		bodyF, _ := la.walkStmts(s.Body.List, f.clone())
		if !sameHeld(f, bodyF) {
			la.pass.Reportf(s.For,
				"lock state changes across a loop iteration (held: entry %s vs body-exit %s); lock and unlock must balance within the body",
				heldKeys(f), heldKeys(bodyF))
		}
		return f, false
	case *ast.RangeStmt:
		if t := la.pass.TypeOf(s.X); t != nil && len(f) > 0 {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				la.reportBlocking(s.For, f, "range over channel")
			}
		}
		la.scanExpr(s.X, f)
		bodyF, _ := la.walkStmts(s.Body.List, f.clone())
		if !sameHeld(f, bodyF) {
			la.pass.Reportf(s.For,
				"lock state changes across a loop iteration (held: entry %s vs body-exit %s); lock and unlock must balance within the body",
				heldKeys(f), heldKeys(bodyF))
		}
		return f, false
	case *ast.SendStmt:
		if len(f) > 0 {
			la.reportBlocking(s.Arrow, f, "channel send")
		}
		la.scanExpr(s.Value, f)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			la.scanExpr(e, f)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						la.scanExpr(v, f)
					}
				}
			}
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			la.scanExpr(a, f)
		}
	case *ast.IncDecStmt, *ast.EmptyStmt:
	}
	return f, false
}

type branchResult struct {
	facts lockFacts
	term  bool
}

// merge combines branch outcomes: terminated branches drop out; surviving
// branches must agree on the held-lock set, else the divergence itself is
// the bug.
func (la *lockAnalysis) merge(branches []branchResult, pos token.Pos, what string) (lockFacts, bool) {
	var live []lockFacts
	for _, b := range branches {
		if !b.term {
			live = append(live, b.facts)
		}
	}
	if len(live) == 0 {
		return lockFacts{}, true
	}
	for _, f := range live[1:] {
		if !sameHeld(live[0], f) {
			la.pass.Reportf(pos,
				"%s branches disagree on held locks (%s vs %s); every path must leave the same locks held",
				what, heldKeys(live[0]), heldKeys(f))
			break
		}
	}
	return live[0], false
}

func (la *lockAnalysis) walkCases(body *ast.BlockStmt, f lockFacts, pos token.Pos, what string) (lockFacts, bool) {
	var branches []branchResult
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cc.Body
			if cc.Comm == nil {
				hasDefault = true
			}
		}
		bf, bt := la.walkStmts(stmts, f.clone())
		branches = append(branches, branchResult{bf, bt})
	}
	if !hasDefault {
		// No default: the zero-case fall-through path keeps the entry state.
		branches = append(branches, branchResult{f, false})
	}
	return la.merge(branches, pos, what)
}

func heldKeys(f lockFacts) string {
	if len(f) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	// Deterministic message text regardless of map order.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return "{" + strings.Join(keys, ",") + "}"
}

// ---------------------------------------------------------------------------
// Lock operations

// lockOp recognizes X.Lock / X.RLock / X.Unlock / X.RUnlock where the
// method belongs to sync.Mutex or sync.RWMutex (directly or promoted from
// an embedded field), returning a canonical key for X.
func (la *lockAnalysis) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	fn, isFn := la.pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

func (la *lockAnalysis) applyLockOp(f lockFacts, key, op string, pos token.Pos) {
	switch op {
	case "Lock", "RLock":
		if h, held := f[key]; held {
			la.pass.Reportf(pos, "%s.%s() while already holding %s (line %d): self-deadlock",
				key, op, key, la.pass.Fset.Position(h.pos).Line)
			return
		}
		f[key] = &heldLock{pos: pos}
	case "Unlock", "RUnlock":
		if _, held := f[key]; !held {
			la.pass.Reportf(pos, "%s.%s() without a tracked %s.Lock() on this path", key, op, key)
			return
		}
		delete(f, key)
	case "TryLock", "TryRLock":
		// Reported by the global sweep in runLockDiscipline: the result is
		// a bool the structural analysis cannot track.
	}
}

// applyDefer handles `defer X.Unlock()` and `defer func() { ... X.Unlock() ... }()`.
func (la *lockAnalysis) applyDefer(f lockFacts, d *ast.DeferStmt) {
	if key, op, ok := la.lockOp(d.Call); ok {
		if op == "Unlock" || op == "RUnlock" {
			if h, held := f[key]; held {
				h.deferred = true
			}
		}
		return
	}
	if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, op, ok := la.lockOp(call); ok && (op == "Unlock" || op == "RUnlock") {
					if h, held := f[key]; held {
						h.deferred = true
					}
				}
			}
			return true
		})
	}
}

func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// ---------------------------------------------------------------------------
// Blocking operations under a held lock

// scanExpr looks for blocking operations inside an expression evaluated
// while locks are held. FuncLit bodies are skipped: they are separate
// analysis units and do not execute at evaluation time.
func (la *lockAnalysis) scanExpr(e ast.Expr, f lockFacts) {
	if len(f) == 0 {
		// Still need to find nothing — no locks held means nothing to flag.
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				la.reportBlocking(n.OpPos, f, "channel receive")
			}
		case *ast.CallExpr:
			if why := la.blockingCall(n); why != "" {
				la.reportBlocking(n.Pos(), f, why)
			}
		}
		return true
	})
}

// blockingCall classifies calls that can block or perform I/O. Returns a
// human-readable reason, or "".
func (la *lockAnalysis) blockingCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := la.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "sync" && name == "Wait":
		// WaitGroup.Wait blocks; Cond.Wait requires the mutex by contract
		// and is exempt.
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil &&
			strings.Contains(recv.Type().String(), "WaitGroup") {
			return "sync.WaitGroup.Wait"
		}
	case path == "time" && name == "Sleep":
		return "time.Sleep"
	case path == "net" || strings.HasPrefix(path, "net/"):
		return "network I/O (" + path + "." + name + ")"
	case strings.HasSuffix(path, "internal/datastore") || strings.HasSuffix(path, "internal/kvstore"):
		// Calls into the storage layer from outside it are RPCs/disk ops.
		// Calls between functions of the same package are local helpers —
		// whether one of those transitively blocks is the interprocedural
		// channeldiscipline analyzer's job, not this per-call heuristic's.
		if la.pass.Pkg != nil && fn.Pkg().Path() == la.pass.Pkg.Path() {
			return ""
		}
		return "datastore I/O (" + name + ")"
	case path == "os" && isFileIO(name):
		return "file I/O (os." + name + ")"
	}
	return ""
}

func isFileIO(name string) bool {
	switch name {
	case "Open", "OpenFile", "Create", "ReadFile", "WriteFile", "Remove",
		"RemoveAll", "Rename", "Mkdir", "MkdirAll", "Stat", "ReadDir":
		return true
	}
	return false
}

func (la *lockAnalysis) reportBlocking(pos token.Pos, f lockFacts, what string) {
	la.pass.Reportf(pos,
		"%s while holding %s: blocking operations under a mutex stall every other workflow task (§4.4); release the lock first",
		what, heldKeys(f))
}

// ---------------------------------------------------------------------------
// Copylocks

// checkValueReceiver flags methods whose value receiver copies a
// lock-bearing struct on every call.
func (la *lockAnalysis) checkValueReceiver(fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	t := la.pass.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if lockPath := containsLock(t, nil); lockPath != "" {
		la.pass.Reportf(fd.Recv.List[0].Pos(),
			"value receiver copies %s (contains %s); use a pointer receiver", t.String(), lockPath)
	}
}

// checkCopies flags by-value copies of lock-bearing structs in
// assignments, short declarations, call arguments, and range clauses.
func (la *lockAnalysis) checkCopies(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for _, rhs := range n.Rhs {
				la.checkCopyExpr(rhs)
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						la.checkCopyExpr(v)
					}
				}
			}
		case *ast.CallExpr:
			if _, _, isLockOp := la.lockOp(n); isLockOp {
				return true
			}
			for _, arg := range n.Args {
				la.checkCopyExpr(arg)
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := la.pass.TypeOf(n.Value); t != nil {
					if lockPath := containsLock(t, nil); lockPath != "" {
						la.pass.Reportf(n.Value.Pos(),
							"range value copies %s (contains %s); iterate by index or over pointers", t.String(), lockPath)
					}
				}
			}
		}
		return true
	})
}

// checkCopyExpr flags expressions that produce a copy of a lock-bearing
// value: variables, field selections, dereferences, and index expressions.
// Composite literals and conversions of literals are initialization, not
// copies, and are exempt.
func (la *lockAnalysis) checkCopyExpr(e ast.Expr) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := la.pass.TypeOf(e)
	if t == nil {
		return
	}
	if lockPath := containsLock(t, nil); lockPath != "" {
		la.pass.Reportf(e.Pos(),
			"by-value copy of %s (contains %s) forks the lock; pass a pointer", t.String(), lockPath)
	}
}

// containsLock reports the path to a sync lock type contained by value in
// t ("" if none). seen guards recursive types.
func containsLock(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
		return containsLock(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := containsLock(u.Field(i).Type(), seen); p != "" {
				return u.Field(i).Name() + "." + p
			}
		}
	case *types.Array:
		if p := containsLock(u.Elem(), seen); p != "" {
			return "[...]" + p
		}
	}
	return ""
}

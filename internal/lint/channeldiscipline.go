package lint

import (
	"sort"
)

// ChannelDiscipline checks three channel invariants that all failed, or
// nearly failed, in real coordination layers (this repo's and the paper's):
//
//  1. No blocking channel operation while holding a mutex. A send that
//     blocks under a lock stalls every other goroutine that needs the
//     lock — with an RWMutex it also wedges writers, which is how one
//     stalled kvstore pipe froze Close and every other pipe's submitters.
//     Checked interprocedurally: calling a function that (transitively)
//     performs a blocking channel op while holding a lock is the same bug
//     one frame removed.
//
//  2. No send on a channel that any function closes, unless an ordering
//     guard proves the send cannot race the close: the sender is only
//     reachable from the closing goroutine (single-owner channels like a
//     writer's inflight queue), a WaitGroup brackets the send (Add before,
//     Done after) and the closer Waits on it before closing, or the close
//     and all sends share a mutex. An unguarded send/close race is a
//     panic: "send on closed channel".
//
//  3. Flush-before-block: a function that buffers bytes into a
//     bufio.Writer must not block on a bounded-channel send while those
//     bytes sit unflushed. The replies that free window slots can only
//     arrive for commands that reached the wire — blocking with them
//     buffered is the PR 7 pipelined-kvstore deadlock. The blessed idiom
//     passes: try a non-blocking send first, flush, then block
//     (select { case ch <- c: default: flush(); ch <- c }).
var ChannelDiscipline = &ModuleAnalyzer{
	Name:  "channeldiscipline",
	Doc:   "flags channel ops under a held mutex, unguarded sends on closable channels, and blocking bounded-window sends with unflushed buffered writes",
	Scope: concScope,
	Run:   runChannelDiscipline,
}

func runChannelDiscipline(pass *ModulePass) {
	sums := pass.Sums
	for _, id := range sums.Order {
		fn := sums.Fns[id]
		if !pass.InScope(fn.Pkg.ImportPath) {
			continue
		}
		checkChanUnderLock(pass, sums, fn)
		checkSendCloseRace(pass, sums, fn)
		checkFlushBeforeBlock(pass, sums, fn)
	}
}

// ---------------------------------------------------------------------------
// Rule 1: blocking channel ops under a held mutex

func checkChanUnderLock(pass *ModulePass, sums *Summaries, fn *FuncSummary) {
	for _, ev := range fn.Events {
		switch ev.Kind {
		case EvSend, EvRecv:
			if ev.NonBlocking || len(ev.Held) == 0 {
				continue
			}
			verb := "send on"
			if ev.Kind == EvRecv {
				verb = "receive from"
			}
			pass.Reportf(fn, ev.Pos,
				"blocking %s channel %s while holding %s; a stalled peer wedges every goroutine contending for the lock",
				verb, ev.Key, ev.Held[0])
		case EvCall:
			if ev.Ref || ev.Callee == "" || len(ev.Held) == 0 {
				continue
			}
			callee := sums.Fn(ev.Callee)
			if callee == nil || callee.TransChanOp == nil {
				continue
			}
			op := callee.TransChanOp
			var what string
			switch op.Kind {
			case EvRecv:
				what = "receives from channel " + op.Key
			case EvWGWait:
				what = "waits on WaitGroup " + op.Key
			default:
				what = "sends on channel " + op.Key
			}
			opPos := op.Fn.Pkg.Fset.Position(op.Pos)
			pass.Reportf(fn, ev.Pos,
				"calling %s while holding %s; it (transitively) %s at %s:%d, a blocking operation under the lock",
				callee.Name, ev.Held[0], what, shortFile(opPos.Filename), opPos.Line)
		}
	}
}

// ---------------------------------------------------------------------------
// Rule 2: send on a channel some function closes, without an ordering guard

func checkSendCloseRace(pass *ModulePass, sums *Summaries, fn *FuncSummary) {
	for _, ev := range fn.Events {
		if ev.Kind != EvSend {
			continue
		}
		closers := sums.ChanClosers[ev.Key]
		if len(closers) == 0 {
			continue
		}
		if sendCloseGuarded(sums, fn, ev, closers) {
			continue
		}
		pass.Reportf(fn, ev.Pos,
			"send on %s, which %s closes; no ordering guard (single-owner goroutine, WaitGroup bracketing, or shared mutex) proves the send cannot race the close — a lost race panics",
			ev.Key, closers[0].Name)
	}
}

// sendCloseGuarded recognizes the three safe send-vs-close disciplines.
func sendCloseGuarded(sums *Summaries, fn *FuncSummary, send Event, closers []*FuncSummary) bool {
	for _, closer := range closers {
		if senderOwnedBy(sums, fn, closer) {
			return true
		}
		if wgBracketGuard(sums, fn, send, closer) {
			return true
		}
		if mutexGuard(sums, send, closer) {
			return true
		}
	}
	return false
}

// senderOwnedBy reports whether every caller chain above fn passes through
// closer before reaching a root — i.e. the send can only execute inside
// the closing goroutine's own call tree, sequenced before its close (which
// this codebase always defers or places last).
func senderOwnedBy(sums *Summaries, fn *FuncSummary, closer *FuncSummary) bool {
	if fn == closer {
		return true
	}
	seen := map[FuncID]bool{fn.ID: true}
	queue := []FuncID{fn.ID}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		callers := sums.Callers[cur]
		if len(callers) == 0 {
			// Reached a root that is not the closer: an escape hatch exists.
			return false
		}
		for _, caller := range callers {
			if caller == closer.ID {
				continue // dominated on this path
			}
			if !seen[caller] {
				seen[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	return true
}

// wgBracketGuard recognizes the submitter-count discipline: the sending
// function brackets the send with Add(...) before and Done() after (or
// deferred) on some WaitGroup, and the closer Waits on that WaitGroup
// before its close — so the close cannot start until every in-flight send
// has completed.
func wgBracketGuard(sums *Summaries, fn *FuncSummary, send Event, closer *FuncSummary) bool {
	keys := make([]string, 0, len(fn.WGAdd))
	for k := range fn.WGAdd {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if fn.WGAdd[k] >= send.Pos || !fn.WGDone[k] {
			continue
		}
		// A Done before the send would release the bracket too early.
		doneAfter := false
		for _, ev := range fn.Events {
			if ev.Kind == EvWGDone && ev.Key == k && ev.Pos > send.Pos {
				doneAfter = true
				break
			}
		}
		if !doneAfter {
			continue
		}
		if waitPos, ok := closer.WGWait[k]; ok {
			// The Wait must precede the close in the closer.
			if closePos, has := closer.CloseKeys[send.Key]; has && waitPos < closePos {
				return true
			}
		}
	}
	return false
}

// mutexGuard recognizes close/send serialized by a common mutex: every
// send site holds M, and the closer holds M at its close of the channel.
func mutexGuard(sums *Summaries, send Event, closer *FuncSummary) bool {
	for _, held := range send.Held {
		for _, ev := range closer.Events {
			if ev.Kind != EvClose || ev.Key != send.Key {
				continue
			}
			for _, h := range ev.Held {
				if h == held {
					return true
				}
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Rule 3: flush-before-block on bounded-window sends

// checkFlushBeforeBlock replays the function's event stream tracking which
// bufio.Writers have (possibly) unflushed bytes. The entry state is
// pessimistic — every writer the function or its callees touch starts
// dirty — because loop bodies re-enter with the previous iteration's
// leftovers. A blocking send on a buffered (windowed) channel while any
// tracked writer is dirty is the deadlock: slots only free up when flushed
// commands reach the peer.
func checkFlushBeforeBlock(pass *ModulePass, sums *Summaries, fn *FuncSummary) {
	// Keys local to a callee ("file.go:NN:name" — its own parameters)
	// mean nothing in this frame and are ignored everywhere below; the
	// call site's argument detection already recorded such writes under
	// this function's canonical key.
	dirty := map[string]bool{}
	touches := func(keys map[string]bool) {
		for k := range keys {
			if !localKey(k) {
				dirty[k] = true
			}
		}
	}
	for _, ev := range fn.Events {
		switch ev.Kind {
		case EvBufWrite:
			dirty[ev.Key] = true
		case EvFlush:
		case EvCall:
			if ev.Callee != "" && !ev.Ref {
				if callee := sums.Fn(ev.Callee); callee != nil {
					touches(callee.TransWrites)
				}
			}
		}
	}
	if len(dirty) == 0 {
		return
	}
	for _, ev := range fn.Events {
		switch ev.Kind {
		case EvBufWrite:
			dirty[ev.Key] = true
		case EvFlush:
			dirty[ev.Key] = false
		case EvCall:
			if ev.Ref || ev.Callee == "" {
				continue
			}
			callee := sums.Fn(ev.Callee)
			if callee == nil {
				continue
			}
			// Apply the callee's net effect: flushes first, then writes (a
			// helper that writes after flushing leaves the writer dirty).
			for k := range callee.TransFlushes {
				if !localKey(k) && !callee.TransWrites[k] {
					dirty[k] = false
				}
			}
			for k := range callee.TransWrites {
				if !localKey(k) {
					dirty[k] = true
				}
			}
		case EvSend:
			if ev.NonBlocking || !sums.ChanBuffered[ev.Key] {
				continue
			}
			var wet []string
			for k, d := range dirty {
				if d {
					wet = append(wet, k)
				}
			}
			if len(wet) == 0 {
				continue
			}
			sort.Strings(wet)
			pass.Reportf(fn, ev.Pos,
				"blocking send on bounded channel %s with unflushed buffered writes (%s); the replies that free window slots need those bytes on the wire — flush first or use select-with-default then flush (the pipelined-kvstore deadlock)",
				ev.Key, wet[0])
		}
	}
}

// Package lint is a from-scratch static-analysis framework for the MuMMI
// codebase, built entirely on the stdlib go/parser + go/ast + go/types
// stack (no golang.org/x/tools dependency). It exists because two of the
// project's load-bearing invariants — the §4.4 locking discipline of the
// workflow manager and the PR 1 determinism contract of the selector
// engine — were previously enforced only by the tests that happened to
// exercise them. The analyzers here turn those invariants into properties
// checked on every build.
//
// Four per-package analyzers ship with the framework:
//
//   - determinism: no iteration-order, RNG, or wall-clock nondeterminism
//     inside the determinism-contracted packages (dynim, knn, parallel,
//     core, faults, kvstore).
//   - lockdiscipline: every Lock has an unlock on all return paths, no
//     blocking operations while a mutex is held, no by-value copies of
//     lock-bearing structs (core, sched, faults, kvstore).
//   - errdiscipline: no silently discarded errors anywhere in the module,
//     modulo an explicit allowlist.
//   - doccomment: every exported identifier in the instrumented packages
//     carries a doc comment.
//
// On top of those, a shared interprocedural layer (summary.go) builds a
// module-wide call graph and per-function summaries — locks acquired,
// channel operations, goroutines spawned, blocking calls — and three
// module analyzers (module.go) consume them:
//
//   - goroutinelifecycle: every go statement must have a provable
//     shutdown/join path (WaitGroup, context cancellation, or a
//     close-signaled channel).
//   - lockorder: the module-wide lock-acquisition-order graph must be
//     acyclic; cycles are deadlock risks and self-cycles through a call
//     are guaranteed deadlocks.
//   - channeldiscipline: no blocking channel operation while a mutex is
//     held (directly or through a callee), no send on a channel that
//     another path closes without an ordering guard, and no blocking send
//     on a bounded channel with unflushed buffered writes pending (the
//     pipelined-kvstore flush-before-block rule).
//
// Findings can be suppressed with a
//
//	//lint:allow <analyzer> [<analyzer>...] -- <reason>
//
// comment on the offending line or the line directly above it; the reason
// is mandatory by convention, and the -unused-suppressions mode (CI's
// default) turns any allow comment that no longer matches a finding into
// its own diagnostic, so stale exceptions cannot accumulate. The
// self-clean test keeps the repo honest under all of the above.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named invariant checker. Run inspects a single
// type-checked package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	// Scope decides whether the analyzer applies to a package (by import
	// path). A nil Scope means every package in the module.
	Scope func(pkgPath string) bool
	Run   func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ErrAllow is the error-discipline allowlist (symbol patterns); only
	// the errdiscipline analyzer consults it.
	ErrAllow []string

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant shortcut for p.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, LockDiscipline, ErrDiscipline, DocComment}
}

// ByName resolves a comma-separated per-package analyzer list
// ("determinism,errdiscipline"). Module analyzers are resolved by
// SelectAnalyzers (module.go), which mixes both kinds.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range splitNames(names) {
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return out, nil
}

func splitNames(names string) []string {
	var out []string
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Suppression: //lint:allow <name>... [-- reason]

var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([a-z, ]+?)\s*(?:--.*)?$`)

// allowComment is one //lint:allow comment. It suppresses findings on its
// own line and on the line directly below it (covering both trailing and
// standalone placement), and remembers whether it ever absorbed a finding
// so stale comments can be reported.
type allowComment struct {
	file  string
	line  int // the comment's own line
	names map[string]bool
	used  bool
}

func (c *allowComment) allows(d Diagnostic) bool {
	if d.File != c.file || (d.Line != c.line && d.Line != c.line+1) {
		return false
	}
	return c.names[d.Analyzer] || c.names["all"]
}

// SuppressionTable indexes every //lint:allow comment in a run and tracks
// which ones actually suppressed something.
type SuppressionTable struct {
	byFile map[string][]*allowComment
	all    []*allowComment
}

// NewSuppressionTable returns an empty table; fill it with Add.
func NewSuppressionTable() *SuppressionTable {
	return &SuppressionTable{byFile: map[string][]*allowComment{}}
}

// Add indexes the allow comments of one package's files.
func (t *SuppressionTable) Add(fset *token.FileSet, files []*ast.File) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				ac := &allowComment{file: pos.Filename, line: pos.Line, names: map[string]bool{}}
				for _, name := range strings.FieldsFunc(m[1], func(r rune) bool {
					return r == ' ' || r == ','
				}) {
					ac.names[name] = true
				}
				t.byFile[ac.file] = append(t.byFile[ac.file], ac)
				t.all = append(t.all, ac)
			}
		}
	}
}

// Allows reports whether some comment suppresses d, marking it used.
func (t *SuppressionTable) Allows(d Diagnostic) bool {
	hit := false
	for _, c := range t.byFile[d.File] {
		if c.allows(d) {
			c.used = true
			hit = true
		}
	}
	return hit
}

// Unused returns one synthetic finding per comment that suppressed nothing,
// restricted to comments whose analyzers all actually ran (a determinism
// allow is not stale just because only errdiscipline ran). Comments naming
// "all" are only auditable on a full run, so they are judged whenever any
// analyzer ran.
func (t *SuppressionTable) Unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, c := range t.all {
		if c.used {
			continue
		}
		judgeable := true
		for name := range c.names {
			if name != "all" && !ran[name] {
				judgeable = false
				break
			}
		}
		if !judgeable {
			continue
		}
		names := make([]string, 0, len(c.names))
		for name := range c.names {
			names = append(names, name)
		}
		sort.Strings(names)
		out = append(out, Diagnostic{
			Analyzer: "unused-suppression",
			File:     c.file,
			Line:     c.line,
			Col:      1,
			Message: fmt.Sprintf("//lint:allow %s suppresses nothing; delete the stale comment",
				strings.Join(names, ",")),
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Running

// RunAnalyzers applies each in-scope analyzer to pkg, filters suppressed
// findings, and returns the rest sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, errAllow []string) []Diagnostic {
	sup := NewSuppressionTable()
	sup.Add(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Scope != nil && !a.Scope(pkg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			ErrAllow: errAllow,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if !sup.Allows(d) {
				out = append(out, d)
			}
		}
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].File != ds[j].File {
			return ds[i].File < ds[j].File
		}
		if ds[i].Line != ds[j].Line {
			return ds[i].Line < ds[j].Line
		}
		if ds[i].Col != ds[j].Col {
			return ds[i].Col < ds[j].Col
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}

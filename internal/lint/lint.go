// Package lint is a from-scratch static-analysis framework for the MuMMI
// codebase, built entirely on the stdlib go/parser + go/ast + go/types
// stack (no golang.org/x/tools dependency). It exists because two of the
// project's load-bearing invariants — the §4.4 locking discipline of the
// workflow manager and the PR 1 determinism contract of the selector
// engine — were previously enforced only by the tests that happened to
// exercise them. The analyzers here turn those invariants into properties
// checked on every build.
//
// Four project-specific analyzers ship with the framework:
//
//   - determinism: no iteration-order, RNG, or wall-clock nondeterminism
//     inside the determinism-contracted packages (dynim, knn, parallel,
//     core).
//   - lockdiscipline: every Lock has an unlock on all return paths, no
//     blocking operations while a mutex is held, no by-value copies of
//     lock-bearing structs (core, sched).
//   - errdiscipline: no silently discarded errors anywhere in the module,
//     modulo an explicit allowlist.
//   - doccomment: every exported identifier in the instrumented packages
//     (core, sched, datastore, telemetry) carries a doc comment.
//
// Findings can be suppressed with a
//
//	//lint:allow <analyzer> [<analyzer>...] -- <reason>
//
// comment on the offending line or the line directly above it; the reason
// is mandatory by convention (the self-clean test keeps the repo honest).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named invariant checker. Run inspects a single
// type-checked package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	// Scope decides whether the analyzer applies to a package (by import
	// path). A nil Scope means every package in the module.
	Scope func(pkgPath string) bool
	Run   func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ErrAllow is the error-discipline allowlist (symbol patterns); only
	// the errdiscipline analyzer consults it.
	ErrAllow []string

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant shortcut for p.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, LockDiscipline, ErrDiscipline, DocComment}
}

// ByName resolves a comma-separated analyzer list ("determinism,errdiscipline").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Suppression: //lint:allow <name>... [-- reason]

var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([a-z, ]+?)\s*(?:--.*)?$`)

// suppressions maps file name -> line -> set of allowed analyzer names. A
// comment suppresses findings on its own line and on the line directly
// below it (covering both trailing and standalone comment placement).
type suppressions map[string]map[int]map[string]bool

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					sup[pos.Filename] = byLine
				}
				for _, name := range strings.FieldsFunc(m[1], func(r rune) bool {
					return r == ' ' || r == ','
				}) {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if byLine[line] == nil {
							byLine[line] = map[string]bool{}
						}
						byLine[line][name] = true
					}
				}
			}
		}
	}
	return sup
}

func (s suppressions) allows(d Diagnostic) bool {
	byLine := s[d.File]
	if byLine == nil {
		return false
	}
	names := byLine[d.Line]
	return names[d.Analyzer] || names["all"]
}

// ---------------------------------------------------------------------------
// Running

// RunAnalyzers applies each in-scope analyzer to pkg, filters suppressed
// findings, and returns the rest sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, errAllow []string) []Diagnostic {
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Scope != nil && !a.Scope(pkg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			ErrAllow: errAllow,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if !sup.allows(d) {
				out = append(out, d)
			}
		}
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].File != ds[j].File {
			return ds[i].File < ds[j].File
		}
		if ds[i].Line != ds[j].Line {
			return ds[i].Line < ds[j].Line
		}
		if ds[i].Col != ds[j].Col {
			return ds[i].Col < ds[j].Col
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}

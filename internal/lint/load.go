package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis. Test files (*_test.go) are excluded: tests may deliberately
// exercise nondeterminism or discard errors, and the invariants guarded
// here are production-code invariants.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Module is the loaded module: every non-test package under the root,
// type-checked in dependency order.
type Module struct {
	Root string // directory containing go.mod
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // topological (dependencies first)
}

// FindModuleRoot walks upward from dir to the nearest go.mod.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if p, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(p), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule parses and type-checks every package under root. Directories
// named testdata or vendor, hidden directories, and underscore-prefixed
// directories are skipped, matching the go tool's matching rules.
func LoadModule(root string) (*Module, error) {
	root, modPath, err := FindModuleRoot(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	m := &Module{Root: root, Path: modPath, Fset: fset}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	parsed := map[string]*Package{} // by import path
	for _, dir := range dirs {
		pkg, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			pkg.ImportPath = modPath
		} else {
			pkg.ImportPath = modPath + "/" + filepath.ToSlash(rel)
		}
		parsed[pkg.ImportPath] = pkg
	}

	order, err := topoSort(parsed, modPath)
	if err != nil {
		return nil, err
	}

	imp := newModuleImporter(fset, modPath, parsed)
	for _, path := range order {
		pkg := parsed[path]
		if err := typeCheck(fset, pkg, imp); err != nil {
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, pkg)
	}
	return m, nil
}

// parseDir parses the non-test Go files of one directory. Returns nil if
// the directory holds no buildable Go files.
func parseDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, Fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// topoSort orders the module's packages dependencies-first.
func topoSort(pkgs map[string]*Package, modPath string) ([]string, error) {
	const (
		white = iota // unvisited
		grey         // on stack
		black        // done
	)
	state := map[string]int{}
	var order []string
	var visit func(path string, chain []string) error
	visit = func(path string, chain []string) error {
		switch state[path] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("lint: import cycle: %s -> %s", strings.Join(chain, " -> "), path)
		}
		state[path] = grey
		pkg := pkgs[path]
		deps := map[string]bool{}
		for _, f := range pkg.Files {
			for _, spec := range f.Imports {
				dep := strings.Trim(spec.Path.Value, `"`)
				if dep == modPath || strings.HasPrefix(dep, modPath+"/") {
					deps[dep] = true
				}
			}
		}
		sorted := make([]string, 0, len(deps))
		for d := range deps {
			sorted = append(sorted, d)
		}
		sort.Strings(sorted)
		for _, dep := range sorted {
			if pkgs[dep] == nil {
				return fmt.Errorf("lint: %s imports %s, which has no source in the module", path, dep)
			}
			if err := visit(dep, append(chain, path)); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal import paths to the packages
// type-checked earlier in topological order, and everything else (the
// standard library) through the stdlib source importer — keeping the whole
// pipeline free of external dependencies and of compiled export data.
type moduleImporter struct {
	modPath string
	pkgs    map[string]*Package
	std     types.Importer
}

func newModuleImporter(fset *token.FileSet, modPath string, pkgs map[string]*Package) *moduleImporter {
	return &moduleImporter{
		modPath: modPath,
		pkgs:    pkgs,
		std:     importer.ForCompiler(fset, "source", nil),
	}
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == mi.modPath || strings.HasPrefix(path, mi.modPath+"/") {
		pkg := mi.pkgs[path]
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("lint: internal import %q not yet type-checked", path)
		}
		return pkg.Types, nil
	}
	return mi.std.Import(path)
}

func typeCheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.ImportPath, fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// LoadErrAllow reads an errdiscipline allowlist file: one FullName-style
// symbol pattern per line (optional trailing '*' wildcard), with blank
// lines and '#' comments ignored.
func LoadErrAllow(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}

// Match reports whether pkg falls under any of the ./...-style patterns,
// interpreted relative to the module root: "./..." matches everything,
// "./internal/..." matches the subtree, "./internal/core" matches exactly.
func (m *Module) Match(pkg *Package, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	rel, err := filepath.Rel(m.Root, pkg.Dir)
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(rel)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if pat == "..." || pat == "" {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == sub || strings.HasPrefix(rel, sub+"/") {
				return true
			}
			continue
		}
		if rel == pat || (pat == "." && rel == ".") {
			return true
		}
	}
	return false
}

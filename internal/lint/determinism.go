package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the PR 1 selector-engine contract — bit-identical
// selections for any worker count, replay-stable workflow-manager traces —
// at the source level. Inside the contracted packages it flags the four
// ways nondeterminism usually leaks into Go code:
//
//  1. ranging over a map (iteration order is randomized by the runtime),
//     unless the loop only collects keys/values into a slice that the very
//     next statement sorts — the repo's canonical sweep idiom;
//  2. the global math/rand functions (shared, unseeded stream; the
//     contract requires per-component *rand.Rand seeded from the config);
//  3. time.Now (wall clock; everything runs on vclock virtual time);
//  4. select statements with multiple communication cases (the runtime
//     picks a ready case pseudo-randomly).
//
// Scope: the selector engine (dynim, knn, parallel) plus the workflow
// manager (core), whose checkpoint/restore sweeps feed campaign replays,
// plus the fault-injection engine (faults), whose schedules must be a pure
// function of the plan seed for chaos replays to be byte-identical, plus
// the kv store (kvstore), whose wire command order and snapshot bytes must
// be a pure function of the data — map iteration order must never reach
// the wire (socket deadlines are the one annotated exception), plus the
// distributed-WM fleet (wmfleet), whose lease acquisition, renewal, and
// adoption schedule must replay byte-identically per campaign seed.
// dynim, knn, and parallel import no module packages outside this set, so
// whole-package analysis over-approximates "reachable from the
// FarthestPoint rank/selection paths".
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags map-range iteration, global math/rand, time.Now, and multi-case select in determinism-contracted packages",
	Scope: func(pkgPath string) bool {
		for _, suffix := range []string{
			"internal/dynim", "internal/knn", "internal/parallel", "internal/core",
			"internal/faults", "internal/kvstore", "internal/wmfleet",
		} {
			if strings.HasSuffix(pkgPath, suffix) {
				return true
			}
		}
		return false
	},
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		v := &determinismVisitor{pass: pass}
		ast.Walk(v, f)
	}
}

type determinismVisitor struct {
	pass *Pass
	// sortedRanges marks map-range statements proven to be followed by a
	// sort of the slice they collect into (set while visiting the
	// enclosing statement list, consumed when the RangeStmt is visited).
	sortedRanges map[*ast.RangeStmt]bool
}

func (v *determinismVisitor) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.BlockStmt:
		v.markSortedCollects(n.List)
	case *ast.CaseClause:
		v.markSortedCollects(n.Body)
	case *ast.CommClause:
		v.markSortedCollects(n.Body)
	case *ast.RangeStmt:
		v.checkRange(n)
	case *ast.CallExpr:
		v.checkCall(n)
	case *ast.SelectStmt:
		v.checkSelect(n)
	}
	return v
}

// checkRange flags `for ... := range m` when m is a map, unless the loop
// was pre-approved as a sorted key-collection.
func (v *determinismVisitor) checkRange(rs *ast.RangeStmt) {
	t := v.pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if v.sortedRanges[rs] {
		return
	}
	v.pass.Reportf(rs.For,
		"map iteration order is nondeterministic; collect keys and sort before use (the sweep idiom), or annotate //lint:allow determinism with a reason if order provably cannot matter")
}

// markSortedCollects scans a statement list for the sweep idiom
//
//	for k := range m { ids = append(ids, k) }
//	sort.Slice(ids, ...)            // or sort.Ints / slices.Sort / ...
//
// and pre-approves the range statement.
func (v *determinismVisitor) markSortedCollects(stmts []ast.Stmt) {
	for i, s := range stmts {
		rs, ok := s.(*ast.RangeStmt)
		if !ok || i+1 >= len(stmts) {
			continue
		}
		target := collectTarget(rs)
		if target == "" {
			continue
		}
		if sortsSlice(stmts[i+1], target) {
			if v.sortedRanges == nil {
				v.sortedRanges = map[*ast.RangeStmt]bool{}
			}
			v.sortedRanges[rs] = true
		}
	}
}

// collectTarget returns the name of the slice a range body appends into,
// or "" if the body does anything besides `x = append(x, ...)`.
func collectTarget(rs *ast.RangeStmt) string {
	if rs.Body == nil || len(rs.Body.List) == 0 {
		return ""
	}
	target := ""
	for _, s := range rs.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return ""
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return ""
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return ""
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) < 1 {
			return ""
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || first.Name != lhs.Name {
			return ""
		}
		if target != "" && target != lhs.Name {
			return ""
		}
		target = lhs.Name
	}
	return target
}

// sortsSlice reports whether stmt is a call to a recognized stdlib sorting
// function with the named slice as first argument.
func sortsSlice(stmt ast.Stmt, name string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	switch pkg.Name {
	case "sort":
		switch sel.Sel.Name {
		case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Strings", "Float64s":
		default:
			return false
		}
	case "slices":
		switch sel.Sel.Name {
		case "Sort", "SortFunc", "SortStableFunc":
		default:
			return false
		}
	default:
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && arg.Name == name
}

// checkCall flags global math/rand functions and time.Now.
func (v *determinismVisitor) checkCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	// Only package-level functions: the selector base must be a package
	// name, not a value (seeded *rand.Rand methods are the sanctioned way).
	if _, isPkg := v.pass.Info.Uses[id].(*types.PkgName); !isPkg {
		return
	}
	fn, ok := v.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf", "NewExpFloat64":
			return // constructors for seeded generators are the fix, not the bug
		}
		v.pass.Reportf(call.Pos(),
			"global math/rand.%s draws from a process-wide stream; use a seeded *rand.Rand owned by the component", fn.Name())
	case "time":
		if fn.Name() == "Now" {
			v.pass.Reportf(call.Pos(),
				"time.Now reads the wall clock; determinism-contracted code must take time from the injected vclock.Clock")
		}
	}
}

// checkSelect flags select statements with two or more communication
// cases: when several are ready the runtime chooses pseudo-randomly.
func (v *determinismVisitor) checkSelect(sel *ast.SelectStmt) {
	comm := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		v.pass.Reportf(sel.Select,
			"select with %d communication cases resolves ready cases pseudo-randomly; restructure to a deterministic priority order", comm)
	}
}

package lint

import (
	"sort"
	"strings"
)

// concScope is the shared reporting scope of the interprocedural
// concurrency analyzers: every package that spawns goroutines, holds
// locks, or will grow concurrency under the multi-tenant campaign service
// (ROADMAP item 1). Summaries still cover the whole module, so facts flow
// through unscoped packages even though findings are not anchored there.
func concScope(pkgPath string) bool {
	for _, suffix := range []string{
		"internal/core", "internal/sched", "internal/kvstore",
		"internal/faults", "internal/retry", "internal/telemetry",
		"internal/campaign", "internal/feedback", "internal/parallel",
		"internal/wmfleet",
	} {
		if strings.HasSuffix(pkgPath, suffix) {
			return true
		}
	}
	return false
}

// GoroutineLifecycle requires every go statement to have a provable
// shutdown/join path. A spawned unit (and its transitive module callees)
// must exhibit at least one of:
//
//   - a WaitGroup.Done on a WaitGroup some function Waits on — the
//     Add-before-spawn / defer-Done / Wait join idiom;
//   - a receive from ctx.Done() — context cancellation;
//   - a receive or range over a channel that some function closes — the
//     close-to-signal-shutdown idiom (a writer loop draining a closable
//     request channel);
//   - a close of a channel some other function receives from — the
//     exit-notification idiom (a server loop whose Close waits on a done
//     channel the goroutine closes on return).
//
// Anything else is a goroutine whose termination no code can wait for: a
// leak under repeated construction, and — worse for this codebase — a
// shutdown that cannot be sequenced, which is exactly how couplings hang
// at scale (PAPER.md §5). Spawns of dynamic function values are flagged
// too: a join path that cannot be resolved statically cannot be audited.
var GoroutineLifecycle = &ModuleAnalyzer{
	Name:  "goroutinelifecycle",
	Doc:   "requires every go statement to have a provable join path (WaitGroup, ctx.Done, or close-signaled channel)",
	Scope: concScope,
	Run:   runGoroutineLifecycle,
}

// lifecycleDepth bounds the callee-closure search from a spawn target; the
// join evidence is always within a couple of hops in practice, and the
// bound keeps pathological call chains from hiding a missing join behind
// sheer distance.
const lifecycleDepth = 6

func runGoroutineLifecycle(pass *ModulePass) {
	sums := pass.Sums
	for _, id := range sums.Order {
		fn := sums.Fns[id]
		if !pass.InScope(fn.Pkg.ImportPath) {
			continue
		}
		for _, ev := range fn.Events {
			if ev.Kind != EvSpawn {
				continue
			}
			if ev.Callee == "" {
				name := ev.Ext
				if name == "" {
					name = "a dynamic function value"
				}
				pass.Reportf(fn, ev.Pos,
					"go statement spawns %s, which cannot be resolved statically; spawn a named function or literal so its join path can be audited", name)
				continue
			}
			target := sums.Fn(ev.Callee)
			if target == nil {
				continue
			}
			if ok, _ := hasJoinPath(sums, ev.Callee); !ok {
				pass.Reportf(fn, ev.Pos,
					"goroutine %s has no provable shutdown path: no WaitGroup.Done matched by a Wait, no ctx.Done receive, no close-signaled channel; it can leak and its termination cannot be sequenced into shutdown", target.Name)
			}
		}
	}
}

// hasJoinPath searches the spawned unit and its transitive callees for any
// of the four join evidences. The string names the evidence (for tests).
func hasJoinPath(sums *Summaries, id FuncID) (bool, string) {
	closure := sums.CalleeClosure(id, lifecycleDepth)
	for _, fn := range closure {
		// (1) WaitGroup join: the goroutine Dones a group someone Waits on.
		keys := make([]string, 0, len(fn.WGDone))
		for k := range fn.WGDone {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if len(sums.WGWaiters[k]) > 0 {
				return true, "waitgroup " + k
			}
		}
		// (2) Context cancellation.
		if fn.RecvKeys["#ctx"] {
			return true, "ctx.Done"
		}
		// (3) Receives from a channel that some function closes.
		rkeys := make([]string, 0, len(fn.RecvKeys))
		for k := range fn.RecvKeys {
			rkeys = append(rkeys, k)
		}
		sort.Strings(rkeys)
		for _, k := range rkeys {
			if len(sums.ChanClosers[k]) > 0 {
				return true, "close-signaled " + k
			}
		}
		// (4) Closes a channel some function receives from (exit signal).
		ckeys := make([]string, 0, len(fn.CloseKeys))
		for k := range fn.CloseKeys {
			ckeys = append(ckeys, k)
		}
		sort.Strings(ckeys)
		for _, k := range ckeys {
			if len(sums.ChanRecvers[k]) > 0 {
				return true, "exit-signal " + k
			}
		}
	}
	return false, ""
}

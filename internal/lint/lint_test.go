package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden files under testdata/src/<analyzer>/ carry `want "regex"`
// comments on every line where the analyzer must report. The harness
// checks both directions: every diagnostic matches a want, and every want
// is matched by a diagnostic.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type wantDiag struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// loadTestPackage parses and type-checks one testdata directory as a
// single package under importPath (chosen so the analyzer's Scope accepts
// it), using only the stdlib source importer — the same stack the real
// driver uses.
func loadTestPackage(t *testing.T, dir, importPath string) (*Package, []wantDiag) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Dir: dir, ImportPath: importPath, Fset: fset}
	var wants []wantDiag
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		pkg.Files = append(pkg.Files, f)
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, wantDiag{file: path, line: i + 1, re: re})
			}
		}
	}
	if err := typeCheck(fset, pkg, importer.ForCompiler(fset, "source", nil)); err != nil {
		t.Fatal(err)
	}
	return pkg, wants
}

// runGolden applies one analyzer to its golden package and verifies the
// diagnostics against the want comments bidirectionally.
func runGolden(t *testing.T, a *Analyzer, dirName, importPath string, errAllow []string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", dirName)
	pkg, wants := loadTestPackage(t, dir, importPath)
	if a.Scope != nil && !a.Scope(importPath) {
		t.Fatalf("test import path %q is outside %s's scope", importPath, a.Name)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{a}, errAllow)
	for _, d := range diags {
		found := false
		for i := range wants {
			w := &wants[i]
			if !w.matched && w.line == d.Line && w.file == d.File && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

func TestDeterminismGolden(t *testing.T) {
	runGolden(t, Determinism, "determinism", "lab/internal/dynim", nil)
}

func TestLockDisciplineGolden(t *testing.T) {
	runGolden(t, LockDiscipline, "lockdiscipline", "lab/internal/core", nil)
}

func TestErrDisciplineGolden(t *testing.T) {
	runGolden(t, ErrDiscipline, "errdiscipline", "errprog", []string{"os.RemoveAll"})
}

func TestDocCommentGolden(t *testing.T) {
	runGolden(t, DocComment, "doccomment", "lab/internal/telemetry", nil)
}

// TestScopeFiltersPackages re-runs the determinism golden package under an
// import path outside the analyzer's scope: RunAnalyzers must produce
// nothing even though the source is full of violations.
func TestScopeFiltersPackages(t *testing.T) {
	dir := filepath.Join("testdata", "src", "determinism")
	pkg, _ := loadTestPackage(t, dir, "lab/internal/feedback")
	if diags := RunAnalyzers(pkg, []*Analyzer{Determinism}, nil); len(diags) != 0 {
		t.Errorf("out-of-scope package produced %d diagnostics: %v", len(diags), diags)
	}
}

// TestSuppressionPlacement pins down the two blessed comment placements:
// trailing on the offending line, or standalone on the line above. A
// comment two lines up must NOT suppress.
func TestSuppressionPlacement(t *testing.T) {
	const src = `package p

import "time"

func trailing() int64 {
	return time.Now().UnixNano() //lint:allow determinism -- trailing placement
}

func above() int64 {
	//lint:allow determinism -- standalone placement
	return time.Now().UnixNano()
}

func tooFar() int64 {
	//lint:allow determinism -- two lines up: must not suppress

	return time.Now().UnixNano()
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Dir: ".", ImportPath: "lab/internal/dynim", Fset: fset, Files: []*ast.File{f}}
	if err := typeCheck(fset, pkg, importer.ForCompiler(fset, "source", nil)); err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{Determinism}, nil)
	if len(diags) != 1 {
		t.Fatalf("want exactly the tooFar finding to survive, got %d: %v", len(diags), diags)
	}
	if diags[0].Line != 17 {
		t.Errorf("surviving finding at line %d, want 17 (tooFar)", diags[0].Line)
	}
}

// TestRepoIsLintClean loads the real module and runs the full suite with
// the repo's .errallow: the codebase must stay finding-free, exactly as
// `go run ./cmd/mummi-lint ./...` enforces in CI.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var errAllow []string
	allowPath := filepath.Join(mod.Root, ".errallow")
	if _, err := os.Stat(allowPath); err == nil {
		errAllow, err = LoadErrAllow(allowPath)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, pkg := range mod.Pkgs {
		for _, d := range RunAnalyzers(pkg, All(), errAllow) {
			t.Errorf("repo not lint-clean: %s", d)
		}
	}
}

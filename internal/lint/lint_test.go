package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden files under testdata/src/<analyzer>/ carry `want "regex"`
// comments on every line where the analyzer must report. The harness
// checks both directions: every diagnostic matches a want, and every want
// is matched by a diagnostic.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type wantDiag struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// loadTestPackage parses and type-checks one testdata directory as a
// single package under importPath (chosen so the analyzer's Scope accepts
// it), using only the stdlib source importer — the same stack the real
// driver uses.
func loadTestPackage(t *testing.T, dir, importPath string) (*Package, []wantDiag) {
	t.Helper()
	pkgs, wants := loadTestModule(t, [][2]string{{dir, importPath}})
	return pkgs[0], wants
}

// chainImporter resolves the already-loaded fixture packages first and
// falls back to the stdlib source importer — the testing twin of the
// driver's moduleImporter.
type chainImporter struct {
	pkgs map[string]*Package
	std  types.Importer
}

func (ci *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := ci.pkgs[path]; ok {
		return p.Types, nil
	}
	return ci.std.Import(path)
}

// loadTestModule parses and type-checks several testdata directories as a
// set of packages sharing one fset, in the given {dir, importPath} order
// (dependencies first) so later fixtures can import earlier ones — the
// multi-package setting the interprocedural analyzers exist for.
func loadTestModule(t *testing.T, specs [][2]string) ([]*Package, []wantDiag) {
	t.Helper()
	fset := token.NewFileSet()
	byPath := map[string]*Package{}
	imp := &chainImporter{pkgs: byPath, std: importer.ForCompiler(fset, "source", nil)}
	var pkgs []*Package
	var wants []wantDiag
	for _, spec := range specs {
		dir, importPath := spec[0], spec[1]
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkg := &Package{Dir: dir, ImportPath: importPath, Fset: fset}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			pkg.Files = append(pkg.Files, f)
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
					}
					wants = append(wants, wantDiag{file: path, line: i + 1, re: re})
				}
			}
		}
		if err := typeCheck(fset, pkg, imp); err != nil {
			t.Fatal(err)
		}
		byPath[importPath] = pkg
		pkgs = append(pkgs, pkg)
	}
	return pkgs, wants
}

// matchWants verifies diagnostics against want comments bidirectionally:
// every diagnostic matches a want, and every want is matched.
func matchWants(t *testing.T, diags []Diagnostic, wants []wantDiag) {
	t.Helper()
	for _, d := range diags {
		found := false
		for i := range wants {
			w := &wants[i]
			if !w.matched && w.line == d.Line && w.file == d.File && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

// runGolden applies one analyzer to its golden package and verifies the
// diagnostics against the want comments bidirectionally.
func runGolden(t *testing.T, a *Analyzer, dirName, importPath string, errAllow []string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", dirName)
	pkg, wants := loadTestPackage(t, dir, importPath)
	if a.Scope != nil && !a.Scope(importPath) {
		t.Fatalf("test import path %q is outside %s's scope", importPath, a.Name)
	}
	matchWants(t, RunAnalyzers(pkg, []*Analyzer{a}, errAllow), wants)
}

// runModuleGolden applies module analyzers to golden packages — building
// the interprocedural summaries and the suppression table exactly as the
// driver does — and verifies the findings bidirectionally.
func runModuleGolden(t *testing.T, analyzers []*ModuleAnalyzer, specs [][2]string) {
	t.Helper()
	pkgs, wants := loadTestModule(t, specs)
	sums := BuildSummaries(pkgs)
	table := NewSuppressionTable()
	for _, pkg := range pkgs {
		table.Add(pkg.Fset, pkg.Files)
	}
	var diags []Diagnostic
	for _, d := range RunModuleAnalyzers(pkgs, sums, analyzers, nil) {
		if !table.Allows(d) {
			diags = append(diags, d)
		}
	}
	matchWants(t, diags, wants)
}

func TestDeterminismGolden(t *testing.T) {
	runGolden(t, Determinism, "determinism", "lab/internal/dynim", nil)
}

func TestLockDisciplineGolden(t *testing.T) {
	runGolden(t, LockDiscipline, "lockdiscipline", "lab/internal/core", nil)
}

func TestErrDisciplineGolden(t *testing.T) {
	runGolden(t, ErrDiscipline, "errdiscipline", "errprog", []string{"os.RemoveAll"})
}

func TestDocCommentGolden(t *testing.T) {
	runGolden(t, DocComment, "doccomment", "lab/internal/telemetry", nil)
}

func TestGoroutineLifecycleGolden(t *testing.T) {
	runModuleGolden(t, []*ModuleAnalyzer{GoroutineLifecycle},
		[][2]string{{filepath.Join("testdata", "src", "goroutinelifecycle"), "lab/internal/sched"}})
}

func TestLockOrderGolden(t *testing.T) {
	runModuleGolden(t, []*ModuleAnalyzer{LockOrder},
		[][2]string{{filepath.Join("testdata", "src", "lockorder"), "lab/internal/core"}})
}

func TestChannelDisciplineGolden(t *testing.T) {
	runModuleGolden(t, []*ModuleAnalyzer{ChannelDiscipline},
		[][2]string{{filepath.Join("testdata", "src", "channeldiscipline"), "lab/internal/kvstore"}})
}

// TestInterprocGolden loads two fixture packages where every finding (and
// every proof of safety) requires summaries to propagate across the
// package boundary: a cross-package lock-order cycle, a blocking callee
// behind an import, and join evidence living in the other package.
func TestInterprocGolden(t *testing.T) {
	runModuleGolden(t, AllModule(), [][2]string{
		{filepath.Join("testdata", "src", "interproc", "a"), "lab/internal/core"},
		{filepath.Join("testdata", "src", "interproc", "b"), "lab/internal/sched"},
	})
}

// TestScopeFiltersPackages re-runs the determinism golden package under an
// import path outside the analyzer's scope: RunAnalyzers must produce
// nothing even though the source is full of violations.
func TestScopeFiltersPackages(t *testing.T) {
	dir := filepath.Join("testdata", "src", "determinism")
	pkg, _ := loadTestPackage(t, dir, "lab/internal/feedback")
	if diags := RunAnalyzers(pkg, []*Analyzer{Determinism}, nil); len(diags) != 0 {
		t.Errorf("out-of-scope package produced %d diagnostics: %v", len(diags), diags)
	}
}

// TestSuppressionPlacement pins down the two blessed comment placements:
// trailing on the offending line, or standalone on the line above. A
// comment two lines up must NOT suppress.
func TestSuppressionPlacement(t *testing.T) {
	const src = `package p

import "time"

func trailing() int64 {
	return time.Now().UnixNano() //lint:allow determinism -- trailing placement
}

func above() int64 {
	//lint:allow determinism -- standalone placement
	return time.Now().UnixNano()
}

func tooFar() int64 {
	//lint:allow determinism -- two lines up: must not suppress

	return time.Now().UnixNano()
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Dir: ".", ImportPath: "lab/internal/dynim", Fset: fset, Files: []*ast.File{f}}
	if err := typeCheck(fset, pkg, importer.ForCompiler(fset, "source", nil)); err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{Determinism}, nil)
	if len(diags) != 1 {
		t.Fatalf("want exactly the tooFar finding to survive, got %d: %v", len(diags), diags)
	}
	if diags[0].Line != 17 {
		t.Errorf("surviving finding at line %d, want 17 (tooFar)", diags[0].Line)
	}
}

// TestModuleScopeFilters re-runs the channeldiscipline fixture under an
// import path outside the concurrency scope: the module analyzers must
// stay silent even though the source is full of violations.
func TestModuleScopeFilters(t *testing.T) {
	dir := filepath.Join("testdata", "src", "channeldiscipline")
	pkgs, _ := loadTestModule(t, [][2]string{{dir, "lab/internal/ui"}})
	sums := BuildSummaries(pkgs)
	if diags := RunModuleAnalyzers(pkgs, sums, AllModule(), nil); len(diags) != 0 {
		t.Errorf("out-of-scope package produced %d diagnostics: %v", len(diags), diags)
	}
}

// TestModuleSuppressionAndUnused drives Module.Run end to end on an inline
// package: a //lint:allow must absorb a module-analyzer finding, and with
// UnusedSuppressions set a comment that matches nothing must surface as a
// synthetic unused-suppression finding.
func TestModuleSuppressionAndUnused(t *testing.T) {
	const src = `package p

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) suppressed(v int) {
	b.mu.Lock()
	//lint:allow channeldiscipline -- exercising suppression of module analyzers
	b.ch <- v
	b.mu.Unlock()
}

//lint:allow channeldiscipline -- stale: matches nothing
func (b *box) clean() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "modsup.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Dir: ".", ImportPath: "lab/internal/kvstore", Fset: fset, Files: []*ast.File{f}}
	if err := typeCheck(fset, pkg, importer.ForCompiler(fset, "source", nil)); err != nil {
		t.Fatal(err)
	}
	m := &Module{Root: ".", Path: "lab", Fset: fset, Pkgs: []*Package{pkg}}

	diags := m.Run(RunOptions{ModuleAnalyzers: AllModule(), UnusedSuppressions: true})
	if len(diags) != 1 {
		t.Fatalf("want exactly the stale-comment finding, got %d: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "unused-suppression" || diags[0].Line != 17 {
		t.Errorf("got %s, want unused-suppression at line 17", diags[0])
	}

	// Without the flag, the stale comment passes silently.
	if diags := m.Run(RunOptions{ModuleAnalyzers: AllModule()}); len(diags) != 0 {
		t.Errorf("without UnusedSuppressions got %v, want none", diags)
	}
}

// TestRepoIsLintClean loads the real module and runs the full suite —
// per-package and interprocedural analyzers, plus the stale-suppression
// audit — with the repo's .errallow: the codebase must stay finding-free,
// exactly as `go run ./cmd/mummi-lint -unused-suppressions ./...` enforces
// in CI.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var errAllow []string
	allowPath := filepath.Join(mod.Root, ".errallow")
	if _, err := os.Stat(allowPath); err == nil {
		errAllow, err = LoadErrAllow(allowPath)
		if err != nil {
			t.Fatal(err)
		}
	}
	diags := mod.Run(RunOptions{
		Analyzers:          All(),
		ModuleAnalyzers:    AllModule(),
		ErrAllow:           errAllow,
		UnusedSuppressions: true,
	})
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

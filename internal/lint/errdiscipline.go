package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDiscipline flags silently discarded errors across the whole module.
// The workflow manager's resilience story (§4.4: "automatically restores
// relevant data and processes ... resubmits failed ones") depends on every
// error reaching either a handler or a recorded counter; a swallowed error
// is a silent divergence between the real campaign and its replay. Two
// shapes are flagged:
//
//  1. a call used as a bare statement (also via go/defer) whose result set
//     includes an error;
//  2. an assignment that binds an error result to the blank identifier
//     (`_ = f()`, `v, _ := g()` where the second result is an error).
//
// Intentional discards go through the allowlist — either the built-in
// entries for never-failing stdlib writers, the module's .errallow file
// (one symbol pattern per line, as printed by (*types.Func).FullName, with
// an optional trailing *), or a //lint:allow errdiscipline annotation at
// the call site.
var ErrDiscipline = &Analyzer{
	Name: "errdiscipline",
	Doc:  "flags discarded errors: bare calls of error-returning functions and error results bound to _",
	Run:  runErrDiscipline,
}

// builtinErrAllow covers stdlib calls whose error is dead by specification
// (strings.Builder and bytes.Buffer never return a non-nil error) or whose
// failure the process cannot meaningfully handle (printing to stdout).
var builtinErrAllow = []string{
	"fmt.Print", "fmt.Printf", "fmt.Println",
	"(*strings.Builder).*",
	"(*bytes.Buffer).*",
	"(*math/rand.Rand).Read",
}

func runErrDiscipline(pass *Pass) {
	e := &errVisitor{pass: pass, allow: append(append([]string{}, builtinErrAllow...), pass.ErrAllow...)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					e.checkBareCall(call, "bare call of")
				}
			case *ast.DeferStmt:
				e.checkBareCall(n.Call, "deferred call of")
			case *ast.GoStmt:
				e.checkBareCall(n.Call, "go statement on")
			case *ast.AssignStmt:
				e.checkAssign(n)
			}
			return true
		})
	}
}

type errVisitor struct {
	pass  *Pass
	allow []string
}

var errType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errType)
}

// errorResultIndexes returns the positions of error-typed results in a
// call's result tuple (single results count as index 0).
func (e *errVisitor) errorResultIndexes(call *ast.CallExpr) []int {
	t := e.pass.TypeOf(call)
	if t == nil {
		return nil
	}
	var out []int
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				out = append(out, i)
			}
		}
	default:
		if isErrorType(t) {
			out = append(out, 0)
		}
	}
	return out
}

func (e *errVisitor) checkBareCall(call *ast.CallExpr, how string) {
	if len(e.errorResultIndexes(call)) == 0 {
		return
	}
	name := e.calleeName(call)
	if e.allowed(name) {
		return
	}
	e.pass.Reportf(call.Pos(),
		"%s %s silently discards its error; handle it, record it, or allowlist the callee in .errallow",
		how, name)
}

func (e *errVisitor) checkAssign(as *ast.AssignStmt) {
	// Single call with multiple results: x, _ := f().
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		for _, idx := range e.errorResultIndexes(call) {
			if idx < len(as.Lhs) && isBlank(as.Lhs[idx]) {
				e.reportBlank(call)
			}
		}
		return
	}
	// Pairwise assignments: _ = f(), g().
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBlank(as.Lhs[i]) {
				continue
			}
			if idxs := e.errorResultIndexes(call); len(idxs) > 0 {
				e.reportBlank(call)
			}
		}
	}
}

func (e *errVisitor) reportBlank(call *ast.CallExpr) {
	name := e.calleeName(call)
	if e.allowed(name) {
		return
	}
	e.pass.Reportf(call.Pos(),
		"error result of %s is assigned to _; handle it, record it, or allowlist the callee in .errallow", name)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// calleeName resolves the called symbol to its FullName form
// ("fmt.Fprintf", "(*os.File).Close", "(mummi/internal/sched.Scheduler).Fail")
// for allowlist matching; unresolvable callees (func values, method
// values) get a positional description and can only be suppressed inline.
func (e *errVisitor) calleeName(call *ast.CallExpr) string {
	fun := ast.Unparen(call.Fun)
	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = e.pass.Info.Uses[fn]
	case *ast.SelectorExpr:
		obj = e.pass.Info.Uses[fn.Sel]
	}
	if f, ok := obj.(*types.Func); ok {
		return f.FullName()
	}
	return "this call"
}

func (e *errVisitor) allowed(name string) bool {
	for _, pat := range e.allow {
		if pat == "" || strings.HasPrefix(pat, "#") {
			continue
		}
		if prefix, ok := strings.CutSuffix(pat, "*"); ok {
			if strings.HasPrefix(name, prefix) {
				return true
			}
		} else if name == pat {
			return true
		}
	}
	return false
}

package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// LockOrder builds the module-wide lock-acquisition-order graph: an edge
// A -> B means some function acquires B (directly, or transitively through
// a call) while holding A. A cycle in that graph is a deadlock waiting for
// the right interleaving — two goroutines entering the cycle from
// different nodes block each other forever. The analyzer reports every
// cycle once, at its lexicographically smallest witness edge, and also the
// degenerate self-cycle: holding a lock while calling a function that
// (transitively) re-acquires the same lock.
//
// The canonical lock keys come from the summary layer, so "s.mu" in sched
// and "w.sched.mu" in core are the same node, and cross-package order
// inversions are visible even though no single function exhibits them.
var LockOrder = &ModuleAnalyzer{
	Name:  "lockorder",
	Doc:   "reports cycles in the module-wide lock-acquisition-order graph (deadlock risk)",
	Scope: concScope,
	Run:   runLockOrder,
}

// lockEdge is one witnessed acquisition ordering: to was acquired at Pos
// (in Fn) while from was held.
type lockEdge struct {
	from, to string
	fn       *FuncSummary
	pos      token.Pos
	// via names the callee for transitive edges ("" for a direct acquire).
	via string
}

func runLockOrder(pass *ModulePass) {
	sums := pass.Sums
	var edges []lockEdge
	for _, id := range sums.Order {
		fn := sums.Fns[id]
		for _, ev := range fn.Events {
			switch ev.Kind {
			case EvAcquire:
				for _, held := range ev.Held {
					if held != ev.Key {
						edges = append(edges, lockEdge{from: held, to: ev.Key, fn: fn, pos: ev.Pos})
					}
				}
			case EvCall:
				if ev.Ref || ev.Callee == "" || len(ev.Held) == 0 {
					continue
				}
				callee := sums.Fn(ev.Callee)
				if callee == nil {
					continue
				}
				acq := make([]string, 0, len(callee.TransAcquire))
				for k := range callee.TransAcquire {
					acq = append(acq, k)
				}
				sort.Strings(acq)
				for _, held := range ev.Held {
					for _, k := range acq {
						if held == k {
							// Self-deadlock through a call: report directly,
							// anchored at the call site.
							pass.Reportf(fn, ev.Pos,
								"calling %s while holding %s, which %s (transitively) acquires again: guaranteed self-deadlock on a non-reentrant mutex",
								callee.Name, held, callee.Name)
							continue
						}
						edges = append(edges, lockEdge{from: held, to: k, fn: fn, pos: ev.Pos, via: callee.Name})
					}
				}
			}
		}
	}

	// Deduplicate edges by (from, to), keeping the deterministically
	// smallest witness (file, line, col order).
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		pa, pb := a.fn.Pkg.Fset.Position(a.pos), b.fn.Pkg.Fset.Position(b.pos)
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Offset < pb.Offset
	})
	adj := map[string][]string{}
	witness := map[[2]string]lockEdge{}
	for _, e := range edges {
		key := [2]string{e.from, e.to}
		if _, ok := witness[key]; ok {
			continue
		}
		witness[key] = e
		adj[e.from] = append(adj[e.from], e.to)
	}

	for _, cyc := range lockCycles(adj) {
		// Report once per cycle, anchored at the witness of its first edge
		// (the rotation with the smallest node leads, so this is stable).
		first := witness[[2]string{cyc[0], cyc[1]}]
		var steps []string
		for i := 0; i+1 < len(cyc); i++ {
			e := witness[[2]string{cyc[i], cyc[i+1]}]
			p := e.fn.Pkg.Fset.Position(e.pos)
			how := ""
			if e.via != "" {
				how = " via " + e.via
			}
			steps = append(steps, fmt.Sprintf("%s -> %s (%s:%d%s)",
				e.from, e.to, shortFile(p.Filename), p.Line, how))
		}
		pass.Reportf(first.fn, first.pos,
			"lock-order cycle: %s; goroutines taking these locks in different orders can deadlock", strings.Join(steps, ", "))
	}
}

// lockCycles enumerates elementary cycles in the (tiny) lock graph as node
// sequences [a, b, ..., a], deduplicated by rotating the smallest node to
// the front, in deterministic order.
func lockCycles(adj map[string][]string) [][]string {
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	seen := map[string]bool{}
	var cycles [][]string
	var path []string
	onPath := map[string]bool{}
	var dfs func(start, cur string)
	dfs = func(start, cur string) {
		path = append(path, cur)
		onPath[cur] = true
		for _, next := range adj[cur] {
			if next == start {
				cyc := canonicalCycle(path)
				sig := strings.Join(cyc, "\x00")
				if !seen[sig] {
					seen[sig] = true
					cycles = append(cycles, cyc)
				}
				continue
			}
			if !onPath[next] && next > start {
				// Only explore nodes > start: every cycle is found from its
				// smallest node exactly once.
				dfs(start, next)
			}
		}
		onPath[cur] = false
		path = path[:len(path)-1]
	}
	for _, n := range nodes {
		dfs(n, n)
	}
	sort.Slice(cycles, func(i, j int) bool {
		return strings.Join(cycles[i], "\x00") < strings.Join(cycles[j], "\x00")
	})
	return cycles
}

// canonicalCycle closes path into a cycle rotated so the smallest node
// leads: [b, c, a] -> [a, b, c, a].
func canonicalCycle(path []string) []string {
	min := 0
	for i, n := range path {
		if n < path[min] {
			min = i
		}
	}
	out := make([]string, 0, len(path)+1)
	out = append(out, path[min:]...)
	out = append(out, path[:min]...)
	out = append(out, path[min])
	return out
}

func shortFile(name string) string {
	if i := strings.LastIndex(name, "/"); i >= 0 {
		if j := strings.LastIndex(name[:i], "/"); j >= 0 {
			return name[j+1:]
		}
		return name[i+1:]
	}
	return name
}

package lint

import (
	"go/ast"
	"strings"
)

// DocComment enforces the documentation contract of the observability PR:
// every exported top-level identifier in the instrumented packages carries
// a doc comment, so the operator-facing API reference (godoc and
// docs/OBSERVABILITY.md) can never silently rot. The rules follow godoc
// conventions rather than inventing stricter ones:
//
//   - exported funcs, types, consts, and vars at top level need a doc
//     comment; for grouped const/var/type declarations the group's doc
//     comment suffices;
//   - methods count only when their receiver's base type is itself
//     exported (exported methods on unexported types are reachable only
//     through interfaces, which carry their own docs);
//   - struct fields and interface methods are exempt — the enclosing
//     type's comment is the unit of documentation;
//   - each package needs a package comment on at least one file.
//
// Scope: the packages the telemetry layer touches (core, sched, datastore,
// telemetry) — the ones OBSERVABILITY.md documents — plus the chaos
// surface (faults, retry), which RESILIENCE.md documents, plus the
// workload-trace layer (trace, benchfmt), whose formats SCENARIOS.md
// documents field by field, plus the distributed-WM fleet (wmfleet),
// whose lease protocol RESILIENCE.md documents.
var DocComment = &Analyzer{
	Name: "doccomment",
	Doc:  "requires doc comments on exported identifiers in the instrumented packages (core, sched, datastore, telemetry, faults, retry, trace, benchfmt, wmfleet)",
	Scope: func(pkgPath string) bool {
		for _, suffix := range []string{
			"internal/core", "internal/sched", "internal/datastore", "internal/telemetry",
			"internal/faults", "internal/retry", "internal/trace", "internal/benchfmt",
			"internal/wmfleet",
		} {
			if strings.HasSuffix(pkgPath, suffix) {
				return true
			}
		}
		return false
	},
	Run: runDocComment,
}

func runDocComment(pass *Pass) {
	hasPkgDoc := false
	for _, f := range pass.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc && len(pass.Files) > 0 {
		pass.Reportf(pass.Files[0].Name.Pos(), "package %s has no package comment", pass.Files[0].Name.Name)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				checkGenDoc(pass, d)
			}
		}
	}
}

// checkFuncDoc flags an exported func or method without a doc comment.
func checkFuncDoc(pass *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || hasDoc(d.Doc) {
		return
	}
	kind := "function"
	if d.Recv != nil {
		recv := receiverTypeName(d.Recv)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		kind = "method"
	}
	pass.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
}

// checkGenDoc flags exported names in a const/var/type declaration that
// have neither a spec-level nor a group-level doc comment.
func checkGenDoc(pass *Pass, d *ast.GenDecl) {
	groupDoc := hasDoc(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && !hasDoc(s.Doc) {
				pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || hasDoc(s.Doc) {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(), "exported %s %s has no doc comment",
						valueKind(d), name.Name)
				}
			}
		}
	}
}

// hasDoc reports whether cg contains actual prose (a bare //go:directive
// group does not count as documentation).
func hasDoc(cg *ast.CommentGroup) bool {
	return cg != nil && strings.TrimSpace(cg.Text()) != ""
}

// receiverTypeName unwraps a method receiver to its base type name
// (stripping pointers and type parameters).
func receiverTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// valueKind renders a GenDecl token as prose ("const" or "variable").
func valueKind(d *ast.GenDecl) string {
	if d.Tok.String() == "const" {
		return "const"
	}
	return "variable"
}

package continuum

import (
	"fmt"
	"runtime"
	"sync"

	"mummi/internal/units"
)

// This file implements the parallel stepper: GridSim2D is "a parallel CPU
// code written in C++ that uses MPI for communication" on 3600 ranks
// (§4.1(1)). The shared-memory Go equivalent decomposes the grid into
// horizontal stripes, one worker goroutine per stripe, with an explicit
// halo exchange between diffusion sub-steps — the same communication
// structure an MPI domain decomposition has, expressed with channels and a
// barrier. The parallel stepper produces results identical to the serial
// one (tested), so the workflow's consumers cannot tell them apart.

// ParallelSim wraps a Sim with a stripe-parallel diffusion stepper.
type ParallelSim struct {
	*Sim
	workers int
}

// NewParallel builds a simulation that steps with the given worker count
// (0 = GOMAXPROCS, capped at the stripe limit of GridN/2).
func NewParallel(cfg Config, workers int) (*ParallelSim, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := cfg.GridN / 2; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return &ParallelSim{Sim: s, workers: workers}, nil
}

// Workers returns the stripe count in use.
func (p *ParallelSim) Workers() int { return p.workers }

// Step advances the model by dt using the parallel stepper. The protein
// random walk stays serial (it is a trivial fraction of the work and its
// RNG stream must match the serial simulation exactly).
func (p *ParallelSim) Step(dt units.SimTime) {
	sub := int(dt / (100 * units.Nanosecond))
	if sub < 1 {
		sub = 1
	}
	for i := 0; i < sub; i++ {
		p.diffuseParallel()
		p.moveProteins(float64(dt) / float64(sub) / float64(units.Microsecond))
	}
	p.time += dt
}

// stripe is one worker's row range [lo, hi).
type stripe struct{ lo, hi int }

func stripes(n, workers int) []stripe {
	out := make([]stripe, 0, workers)
	base := n / workers
	extra := n % workers
	row := 0
	for w := 0; w < workers; w++ {
		h := base
		if w < extra {
			h++
		}
		out = append(out, stripe{lo: row, hi: row + h})
		row += h
	}
	return out
}

// diffuseParallel runs the same 5-point diffusion + protein accretion as
// the serial diffuse, decomposed into stripes. Because each stripe writes
// only its own rows of the next-state buffer and reads the immutable
// current-state field (including the halo rows owned by neighbours), no
// locking is needed within a sub-step; the WaitGroup is the barrier that
// an MPI halo exchange implies.
func (p *ParallelSim) diffuseParallel() {
	n := p.cfg.GridN
	const kappa = 0.2
	strps := stripes(n, p.workers)
	for sp, f := range p.fields {
		next := make([]float32, len(f))
		var wg sync.WaitGroup
		for _, st := range strps {
			wg.Add(1)
			go func(st stripe) {
				defer wg.Done()
				for y := st.lo; y < st.hi; y++ {
					ym, yp := (y-1+n)%n, (y+1)%n
					for x := 0; x < n; x++ {
						xm, xp := (x-1+n)%n, (x+1)%n
						lap := f[y*n+xm] + f[y*n+xp] + f[ym*n+x] + f[yp*n+x] - 4*f[y*n+x]
						next[y*n+x] = f[y*n+x] + kappa*lap
					}
				}
			}(st)
		}
		wg.Wait()
		p.fields[sp] = next
		// Protein accretion is serial and tiny (one cell per protein), and
		// must apply in the same order as the serial stepper.
		cell := p.cfg.Domain.Nanometers() / float64(n)
		for _, prot := range p.proteins {
			g := p.couplings[prot.State][sp]
			if g == 0 {
				continue
			}
			x, y := int(prot.X/cell)%n, int(prot.Y/cell)%n
			p.fields[sp][y*n+x] += float32(g * 0.01)
		}
	}
}

// RankLayout describes an MPI-style 2-D processor grid for the full-scale
// deployment (the paper ran 3600 ranks = 150 nodes × 24 cores). It exists
// for capacity planning and the Fig. 4 performance model: communication
// volume per step scales with the total halo perimeter.
type RankLayout struct {
	Px, Py int // processor grid
	GridN  int
}

// PlanRanks factors `ranks` into the most square Px×Py grid that divides
// the workload evenly enough (Px, Py ≤ GridN).
func PlanRanks(ranks, gridN int) (RankLayout, error) {
	if ranks < 1 || gridN < 1 {
		return RankLayout{}, fmt.Errorf("continuum: invalid rank plan %d/%d", ranks, gridN)
	}
	best := RankLayout{Px: 1, Py: ranks, GridN: gridN}
	for px := 1; px*px <= ranks; px++ {
		if ranks%px != 0 {
			continue
		}
		py := ranks / px
		if px <= gridN && py <= gridN {
			best = RankLayout{Px: px, Py: py, GridN: gridN}
		}
	}
	if best.Px > gridN || best.Py > gridN {
		return RankLayout{}, fmt.Errorf("continuum: %d ranks cannot tile a %d grid", ranks, gridN)
	}
	return best, nil
}

// Ranks returns the total rank count.
func (l RankLayout) Ranks() int { return l.Px * l.Py }

// SubgridCells returns the cells owned by one rank (upper bound).
func (l RankLayout) SubgridCells() int {
	return ceilDiv(l.GridN, l.Px) * ceilDiv(l.GridN, l.Py)
}

// HaloCells returns the halo cells one rank exchanges per sub-step (the
// perimeter of its subgrid, 4-neighbour stencil).
func (l RankLayout) HaloCells() int {
	return 2*ceilDiv(l.GridN, l.Px) + 2*ceilDiv(l.GridN, l.Py)
}

// CommToComputeRatio returns halo cells per owned cell — the surface-to-
// volume ratio that bounds strong scaling. At the paper's operating point
// (2400² grid on 3600 ranks → 40×60 subgrids) it is ≈0.083, comfortably
// compute-bound, which is why GridSim2D sustains 0.96 ms/day.
func (l RankLayout) CommToComputeRatio() float64 {
	return float64(l.HaloCells()) / float64(l.SubgridCells())
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

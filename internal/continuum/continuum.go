// Package continuum is mummi-go's stand-in for GridSim2D, the paper's
// macro-scale model (§4.1(1)): a dynamic-density-functional-theory (DDFT)
// description of a 1 µm × 1 µm lipid bilayer discretized on a 2400×2400
// grid, with 8 lipid species in the inner leaflet and 6 in the outer, and
// RAS/RAF proteins represented as interacting particles.
//
// The surrogate evolves real density fields (diffusion plus protein-coupled
// aggregation terms, a simplified DDFT) and random-walking protein
// particles, so that downstream components — the patch creator, the ML
// encoder, and the CG-to-continuum feedback that updates protein-lipid
// coupling parameters on the fly — all operate on genuine data. Wall-clock
// performance (0.96 ms/day on 3600 ranks) and snapshot sizing (~374 MB per
// 1 µs snapshot) are modeled in the campaign driver; the grid here defaults
// to a laptop-scale resolution and accepts the full 2400² when asked.
package continuum

import (
	"fmt"
	"math"
	"math/rand"

	"mummi/internal/units"
)

// Config sizes the model. The zero value is unusable; call DefaultConfig.
type Config struct {
	// GridN is the grid resolution per side (paper: 2400).
	GridN int `json:"grid_n"`
	// Domain is the physical side length (paper: 1 µm).
	Domain units.Length `json:"domain_nm"`
	// InnerLipids and OuterLipids count lipid species per leaflet
	// (paper: 8 inner, 6 outer).
	InnerLipids int `json:"inner_lipids"`
	OuterLipids int `json:"outer_lipids"`
	// Proteins is the number of RAS/RAF particles on the membrane.
	Proteins int `json:"proteins"`
	// Seed makes the evolution deterministic.
	Seed int64 `json:"seed"`
}

// DefaultConfig returns a laptop-scale configuration that preserves the
// paper's structure (14 lipid species, protein particles) at 1/20 the grid
// resolution.
func DefaultConfig() Config {
	return Config{GridN: 120, Domain: 1 * units.Um, InnerLipids: 8, OuterLipids: 6,
		Proteins: 30, Seed: 1}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.GridN < 8 || c.Domain <= 0 || c.InnerLipids < 1 || c.OuterLipids < 0 || c.Proteins < 0 {
		return fmt.Errorf("continuum: invalid config %+v", c)
	}
	return nil
}

// Species returns the total lipid species count.
func (c Config) Species() int { return c.InnerLipids + c.OuterLipids }

// Protein state labels: the campaign distinguishes RAS-only from RAS-RAF
// configurations; states drive patch-queue routing in the patch selector.
const (
	StateRASOnly = iota
	StateRASRAFa
	StateRASRAFb
	NumProteinStates
)

// Protein is one particle on the membrane.
type Protein struct {
	ID    int     `json:"id"`
	X     float64 `json:"x_nm"` // position in nm, periodic domain
	Y     float64 `json:"y_nm"`
	State int     `json:"state"`
}

// Sim is the evolving continuum model.
type Sim struct {
	cfg      Config
	rng      *rand.Rand
	time     units.SimTime
	fields   [][]float32 // [species][GridN*GridN] densities
	proteins []Protein
	// couplings[state][species] scales how strongly a protein in a given
	// state attracts each lipid species. CG-to-continuum feedback updates
	// these from aggregated RDFs — "the ongoing continuum simulation reads
	// and updates these parameters on the fly".
	couplings    [][]float64
	paramVersion int
}

// New builds a simulation with smoothly varying initial lipid densities.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	n := cfg.GridN
	s.fields = make([][]float32, cfg.Species())
	for sp := range s.fields {
		f := make([]float32, n*n)
		// Smooth random field: a few low-frequency cosine modes per species.
		ax, ay := s.rng.Float64()*3+1, s.rng.Float64()*3+1
		px, py := s.rng.Float64()*2*math.Pi, s.rng.Float64()*2*math.Pi
		base := 0.5 + 0.5*s.rng.Float64()
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v := base +
					0.25*math.Cos(ax*2*math.Pi*float64(x)/float64(n)+px)*
						math.Cos(ay*2*math.Pi*float64(y)/float64(n)+py)
				f[y*n+x] = float32(v)
			}
		}
		s.fields[sp] = f
	}
	s.proteins = make([]Protein, cfg.Proteins)
	for i := range s.proteins {
		s.proteins[i] = Protein{
			ID:    i,
			X:     s.rng.Float64() * s.cfg.Domain.Nanometers(),
			Y:     s.rng.Float64() * s.cfg.Domain.Nanometers(),
			State: s.rng.Intn(NumProteinStates),
		}
	}
	s.couplings = make([][]float64, NumProteinStates)
	for st := range s.couplings {
		s.couplings[st] = make([]float64, cfg.Species())
		for sp := range s.couplings[st] {
			s.couplings[st][sp] = 0.1 // neutral prior until feedback arrives
		}
	}
	return s, nil
}

// Time returns the accumulated simulated time.
func (s *Sim) Time() units.SimTime { return s.time }

// Config returns the simulation configuration.
func (s *Sim) Config() Config { return s.cfg }

// ParamVersion returns how many feedback parameter updates have been applied.
func (s *Sim) ParamVersion() int { return s.paramVersion }

// UpdateCouplings applies a CG-to-continuum feedback result: per-state,
// per-species protein-lipid coupling strengths derived from aggregated RDFs.
func (s *Sim) UpdateCouplings(c [][]float64) error {
	if len(c) != NumProteinStates {
		return fmt.Errorf("continuum: want %d states, got %d", NumProteinStates, len(c))
	}
	for st := range c {
		if len(c[st]) != s.cfg.Species() {
			return fmt.Errorf("continuum: state %d wants %d species, got %d",
				st, s.cfg.Species(), len(c[st]))
		}
	}
	for st := range c {
		copy(s.couplings[st], c[st])
	}
	s.paramVersion++
	return nil
}

// Couplings returns a deep copy of the current coupling matrix.
func (s *Sim) Couplings() [][]float64 {
	out := make([][]float64, len(s.couplings))
	for i, row := range s.couplings {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// Step advances the model by dt of simulated time, split into explicit
// diffusion sub-steps sized for stability.
func (s *Sim) Step(dt units.SimTime) {
	// One sub-step per 100 ns of model time keeps the explicit scheme tame
	// while bounding CPU cost for the surrogate.
	sub := int(dt / (100 * units.Nanosecond))
	if sub < 1 {
		sub = 1
	}
	for i := 0; i < sub; i++ {
		s.diffuse()
		s.moveProteins(float64(dt) / float64(sub) / float64(units.Microsecond))
	}
	s.time += dt
}

// diffuse applies one explicit 5-point diffusion step plus protein-coupled
// accretion to every species field.
func (s *Sim) diffuse() {
	n := s.cfg.GridN
	const kappa = 0.2 // diffusion number, stable for the 5-point stencil
	for sp, f := range s.fields {
		next := make([]float32, len(f))
		for y := 0; y < n; y++ {
			ym, yp := (y-1+n)%n, (y+1)%n
			for x := 0; x < n; x++ {
				xm, xp := (x-1+n)%n, (x+1)%n
				lap := f[y*n+xm] + f[y*n+xp] + f[ym*n+x] + f[yp*n+x] - 4*f[y*n+x]
				next[y*n+x] = f[y*n+x] + kappa*lap
			}
		}
		s.fields[sp] = next
		// Protein-coupled accretion: proteins pull lipids they couple to
		// toward their grid cell, creating the "lipid fingerprints" the
		// patch encoder later distinguishes.
		cell := s.cfg.Domain.Nanometers() / float64(n)
		for _, p := range s.proteins {
			g := s.couplings[p.State][sp]
			if g == 0 {
				continue
			}
			x, y := int(p.X/cell)%n, int(p.Y/cell)%n
			s.fields[sp][y*n+x] += float32(g * 0.01)
		}
	}
}

// moveProteins random-walks the particles; dtUs is the sub-step in µs.
func (s *Sim) moveProteins(dtUs float64) {
	// Lateral protein diffusion ~1 µm²/s = 1e-6 µm²/µs; in nm: step std
	// sqrt(2 D dt) with D = 1e3 nm²/µs keeps motion visible at patch scale.
	std := math.Sqrt(2 * 1e3 * dtUs)
	dom := s.cfg.Domain.Nanometers()
	for i := range s.proteins {
		p := &s.proteins[i]
		p.X = wrap(p.X+s.rng.NormFloat64()*std, dom)
		p.Y = wrap(p.Y+s.rng.NormFloat64()*std, dom)
		// Rare conformational state changes (RAS ↔ RAS-RAF association).
		if s.rng.Float64() < 0.001 {
			p.State = s.rng.Intn(NumProteinStates)
		}
	}
}

func wrap(v, dom float64) float64 {
	v = math.Mod(v, dom)
	if v < 0 {
		v += dom
	}
	return v
}

// Snapshot captures the full model state at the current time.
func (s *Sim) Snapshot() *Snapshot {
	snap := &Snapshot{
		Time:    s.time,
		GridN:   s.cfg.GridN,
		Domain:  s.cfg.Domain,
		Fields:  make([][]float32, len(s.fields)),
		Protein: append([]Protein(nil), s.proteins...),
	}
	for i, f := range s.fields {
		snap.Fields[i] = append([]float32(nil), f...)
	}
	return snap
}

// Density returns the current density of species sp at grid cell (x, y).
func (s *Sim) Density(sp, x, y int) float64 {
	return float64(s.fields[sp][y*s.cfg.GridN+x])
}

// Proteins returns a copy of the particle states.
func (s *Sim) Proteins() []Protein { return append([]Protein(nil), s.proteins...) }

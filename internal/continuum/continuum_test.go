package continuum

import (
	"bytes"
	"math"
	"testing"

	"mummi/internal/units"
)

func small() Config {
	return Config{GridN: 32, Domain: 100 * units.Nm, InnerLipids: 3, OuterLipids: 2,
		Proteins: 5, Seed: 7}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := []Config{
		{GridN: 4, Domain: 1, InnerLipids: 1},
		{GridN: 64, Domain: 0, InnerLipids: 1},
		{GridN: 64, Domain: 1, InnerLipids: 0},
		{GridN: 64, Domain: 1, InnerLipids: 1, Proteins: -1},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if DefaultConfig().Species() != 14 {
		t.Errorf("paper has 8+6=14 species, default has %d", DefaultConfig().Species())
	}
}

func TestStepAdvancesTimeAndMoves(t *testing.T) {
	s, err := New(small())
	if err != nil {
		t.Fatal(err)
	}
	before := s.Proteins()
	s.Step(1 * units.Microsecond)
	if s.Time() != 1*units.Microsecond {
		t.Errorf("Time = %v", s.Time())
	}
	after := s.Proteins()
	moved := 0
	for i := range before {
		if before[i].X != after[i].X || before[i].Y != after[i].Y {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no protein moved in 1 µs")
	}
	for _, p := range after {
		if p.X < 0 || p.X >= 100 || p.Y < 0 || p.Y >= 100 {
			t.Errorf("protein left the periodic domain: %+v", p)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []Protein {
		s, _ := New(small())
		s.Step(2 * units.Microsecond)
		return s.Proteins()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at protein %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDiffusionSmoothsFields(t *testing.T) {
	s, _ := New(small())
	// Variance of a diffusing field must not increase (up to the small
	// protein accretion term).
	varOf := func() float64 {
		var sum, sum2 float64
		n := 0
		for y := 0; y < 32; y++ {
			for x := 0; x < 32; x++ {
				v := s.Density(0, x, y)
				sum += v
				sum2 += v * v
				n++
			}
		}
		mean := sum / float64(n)
		return sum2/float64(n) - mean*mean
	}
	v0 := varOf()
	s.Step(5 * units.Microsecond)
	v1 := varOf()
	if v1 > v0*1.05 {
		t.Errorf("field variance grew: %v -> %v", v0, v1)
	}
}

func TestUpdateCouplingsFeedback(t *testing.T) {
	s, _ := New(small())
	if s.ParamVersion() != 0 {
		t.Fatal("fresh sim has nonzero param version")
	}
	c := s.Couplings()
	c[StateRASRAFa][0] = 0.9
	if err := s.UpdateCouplings(c); err != nil {
		t.Fatal(err)
	}
	if s.ParamVersion() != 1 {
		t.Errorf("ParamVersion = %d", s.ParamVersion())
	}
	if got := s.Couplings()[StateRASRAFa][0]; got != 0.9 {
		t.Errorf("coupling = %v", got)
	}
	// Mutating the returned copy must not touch internals.
	s.Couplings()[0][0] = 123
	if s.Couplings()[0][0] == 123 {
		t.Error("Couplings returned aliased storage")
	}
	// Shape errors rejected.
	if err := s.UpdateCouplings(c[:1]); err == nil {
		t.Error("short state list accepted")
	}
	bad := s.Couplings()
	bad[0] = bad[0][:2]
	if err := s.UpdateCouplings(bad); err == nil {
		t.Error("short species row accepted")
	}
}

func TestCouplingInfluencesField(t *testing.T) {
	// A strong coupling must accumulate density at protein locations.
	cfg := small()
	cfg.Proteins = 1
	s, _ := New(cfg)
	c := s.Couplings()
	for st := range c {
		c[st][0] = 5.0
	}
	s.UpdateCouplings(c)
	p := s.Proteins()[0]
	cell := cfg.Domain.Nanometers() / float64(cfg.GridN)
	x, y := int(p.X/cell)%cfg.GridN, int(p.Y/cell)%cfg.GridN
	before := s.Density(0, x, y)
	s.diffuse() // single sub-step keeps the protein in place
	after := s.Density(0, x, y)
	if after <= before {
		t.Errorf("coupled density did not grow: %v -> %v", before, after)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s, _ := New(small())
	s.Step(3 * units.Microsecond)
	snap := s.Snapshot()
	b, err := snap.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != snap.Time || got.GridN != snap.GridN || got.Domain != snap.Domain {
		t.Errorf("header mismatch: %+v vs %+v", got, snap)
	}
	if len(got.Protein) != len(snap.Protein) || got.Protein[2] != snap.Protein[2] {
		t.Error("protein records mismatch")
	}
	if len(got.Fields) != len(snap.Fields) {
		t.Fatalf("fields = %d", len(got.Fields))
	}
	for i := range got.Fields {
		if !equalF32(got.Fields[i], snap.Fields[i]) {
			t.Fatalf("field %d corrupted", i)
		}
	}
	if int64(snap.EstimatedSize()) != int64(len(b)) {
		t.Errorf("EstimatedSize = %v, actual %d", snap.EstimatedSize(), len(b))
	}
}

func TestSnapshotDecodeErrors(t *testing.T) {
	if _, err := UnmarshalSnapshot(nil); err == nil {
		t.Error("empty snapshot decoded")
	}
	if _, err := UnmarshalSnapshot([]byte("XXXXGARBAGE")); err == nil {
		t.Error("bad magic decoded")
	}
	s, _ := New(small())
	b, _ := s.Snapshot().Marshal()
	if _, err := UnmarshalSnapshot(b[:len(b)-100]); err == nil {
		t.Error("truncated snapshot decoded")
	}
	// Corrupt the version.
	bad := bytes.Clone(b)
	bad[4] = 99
	if _, err := UnmarshalSnapshot(bad); err == nil {
		t.Error("bad version decoded")
	}
}

func TestFullScaleSnapshotSizeMatchesPaper(t *testing.T) {
	// §4.1(1): "when stored in a custom binary format, consumes ∼374 MB".
	got := FullScaleSnapshotSize()
	if got < 300*units.MB || got > 450*units.MB {
		t.Errorf("full-scale snapshot = %v, want ~374 MB", got)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	s, _ := New(small())
	snap := s.Snapshot()
	snap.Fields[0][0] = 999
	if math.Abs(s.Density(0, 0, 0)-999) < 1 {
		t.Error("snapshot aliases live fields")
	}
}

func equalF32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

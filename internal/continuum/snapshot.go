package continuum

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mummi/internal/units"
)

// Snapshot is one continuum frame: the paper's GridSim2D delivers one every
// 90 s of wall clock (1 µs of model time), ~374 MB in "a custom binary
// format". This is that format for mummi-go: a little-endian "GS2D" header
// followed by protein records and raw float32 fields.
type Snapshot struct {
	Time    units.SimTime
	GridN   int
	Domain  units.Length
	Fields  [][]float32
	Protein []Protein
}

var snapMagic = [4]byte{'G', 'S', '2', 'D'}

const snapVersion = uint32(1)

// WriteTo serializes the snapshot. It implements io.WriterTo.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := put(snapMagic); err != nil {
		return n, err
	}
	hdr := []uint64{
		uint64(snapVersion),
		uint64(s.Time),
		uint64(s.GridN),
		uint64(s.Domain.Nanometers()),
		uint64(len(s.Fields)),
		uint64(len(s.Protein)),
	}
	for _, h := range hdr {
		if err := put(h); err != nil {
			return n, err
		}
	}
	for _, p := range s.Protein {
		if err := put(int64(p.ID)); err != nil {
			return n, err
		}
		if err := put(p.X); err != nil {
			return n, err
		}
		if err := put(p.Y); err != nil {
			return n, err
		}
		if err := put(int64(p.State)); err != nil {
			return n, err
		}
	}
	for _, f := range s.Fields {
		if len(f) != s.GridN*s.GridN {
			return n, fmt.Errorf("continuum: field has %d cells, grid wants %d", len(f), s.GridN*s.GridN)
		}
		if err := put(f); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Marshal serializes to a byte slice (the shape the data interface wants).
func (s *Snapshot) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadSnapshot decodes one snapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("continuum: short magic: %w", err)
	}
	if magic != snapMagic {
		return nil, errors.New("continuum: bad snapshot magic")
	}
	var hdr [6]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("continuum: short header: %w", err)
		}
	}
	if hdr[0] != uint64(snapVersion) {
		return nil, fmt.Errorf("continuum: unsupported snapshot version %d", hdr[0])
	}
	gridN := int(hdr[2])
	nFields, nProt := int(hdr[4]), int(hdr[5])
	if gridN < 1 || gridN > 1<<16 || nFields < 0 || nFields > 1024 || nProt < 0 || nProt > 1<<24 {
		return nil, errors.New("continuum: implausible snapshot header")
	}
	s := &Snapshot{
		Time:   units.SimTime(hdr[1]),
		GridN:  gridN,
		Domain: units.Length(hdr[3]),
	}
	for i := 0; i < nProt; i++ {
		var id, state int64
		var x, y float64
		if err := binary.Read(br, binary.LittleEndian, &id); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &y); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &state); err != nil {
			return nil, err
		}
		s.Protein = append(s.Protein, Protein{ID: int(id), X: x, Y: y, State: int(state)})
	}
	for i := 0; i < nFields; i++ {
		f := make([]float32, gridN*gridN)
		if err := binary.Read(br, binary.LittleEndian, f); err != nil {
			return nil, fmt.Errorf("continuum: short field %d: %w", i, err)
		}
		s.Fields = append(s.Fields, f)
	}
	return s, nil
}

// UnmarshalSnapshot decodes from a byte slice.
func UnmarshalSnapshot(b []byte) (*Snapshot, error) {
	return ReadSnapshot(bytes.NewReader(b))
}

// EstimatedSize returns the serialized size in bytes without serializing —
// the campaign's data-volume ledger uses this for full-scale (2400²)
// snapshots that are never materialized.
func (s *Snapshot) EstimatedSize() units.ByteSize {
	n := 4 + 6*8 + len(s.Protein)*32
	n += len(s.Fields) * s.GridN * s.GridN * 4
	return units.ByteSize(n)
}

// FullScaleSnapshotSize returns the on-disk size of a paper-scale snapshot
// (2400² grid, 14 species): ~374 MB, matching §4.1(1).
func FullScaleSnapshotSize() units.ByteSize {
	s := Snapshot{GridN: 2400, Fields: make([][]float32, 14)}
	return units.ByteSize(4+6*8) + units.ByteSize(len(s.Fields)*2400*2400*4)
}

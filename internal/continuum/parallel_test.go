package continuum

import (
	"testing"
	"testing/quick"

	"mummi/internal/units"
)

func TestParallelMatchesSerialExactly(t *testing.T) {
	cfg := small()
	serial, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		serial.Step(1 * units.Microsecond)
		par.Step(1 * units.Microsecond)
	}
	if serial.Time() != par.Time() {
		t.Fatalf("times diverged: %v vs %v", serial.Time(), par.Time())
	}
	for sp := 0; sp < cfg.Species(); sp++ {
		for y := 0; y < cfg.GridN; y++ {
			for x := 0; x < cfg.GridN; x++ {
				a, b := serial.Density(sp, x, y), par.Density(sp, x, y)
				if a != b {
					t.Fatalf("field %d cell (%d,%d): serial %v, parallel %v", sp, x, y, a, b)
				}
			}
		}
	}
	sp, pp := serial.Proteins(), par.Proteins()
	for i := range sp {
		if sp[i] != pp[i] {
			t.Fatalf("protein %d diverged: %+v vs %+v", i, sp[i], pp[i])
		}
	}
}

func TestParallelWorkerClamping(t *testing.T) {
	cfg := small() // GridN 32 → stripe limit 16
	p, err := NewParallel(cfg, 999)
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers() > 16 {
		t.Errorf("workers = %d, want <= GridN/2", p.Workers())
	}
	p0, err := NewParallel(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p0.Workers() < 1 {
		t.Errorf("auto workers = %d", p0.Workers())
	}
	if _, err := NewParallel(Config{GridN: 2}, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestStripesPartition(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := 1 + int(nRaw)%200
		w := 1 + int(wRaw)%16
		if w > n {
			w = n
		}
		ss := stripes(n, w)
		if len(ss) != w {
			return false
		}
		row := 0
		for _, s := range ss {
			if s.lo != row || s.hi < s.lo {
				return false
			}
			row = s.hi
		}
		return row == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanRanksPaperOperatingPoint(t *testing.T) {
	// 3600 ranks on the 2400² grid: a 60×60 processor grid, 40×40 subgrids.
	l, err := PlanRanks(3600, 2400)
	if err != nil {
		t.Fatal(err)
	}
	if l.Ranks() != 3600 {
		t.Errorf("Ranks = %d", l.Ranks())
	}
	if l.Px != 60 || l.Py != 60 {
		t.Errorf("grid = %dx%d, want 60x60", l.Px, l.Py)
	}
	if l.SubgridCells() != 1600 {
		t.Errorf("subgrid = %d cells", l.SubgridCells())
	}
	// Surface-to-volume: 160 halo cells / 1600 owned = 0.1 — compute-bound.
	if r := l.CommToComputeRatio(); r < 0.05 || r > 0.15 {
		t.Errorf("comm/compute = %v", r)
	}
}

func TestPlanRanksErrors(t *testing.T) {
	if _, err := PlanRanks(0, 100); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := PlanRanks(7, 2); err == nil {
		t.Error("7 ranks on a 2-grid accepted (1x7 cannot tile)")
	}
	// A prime rank count still plans (1×p) when it fits.
	l, err := PlanRanks(7, 100)
	if err != nil {
		t.Fatal(err)
	}
	if l.Ranks() != 7 {
		t.Errorf("Ranks = %d", l.Ranks())
	}
}

func BenchmarkSerialStep(b *testing.B) {
	cfg := DefaultConfig()
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(100 * units.Nanosecond) // one diffusion sub-step
	}
}

func BenchmarkParallelStep(b *testing.B) {
	cfg := DefaultConfig()
	s, err := NewParallel(cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(100 * units.Nanosecond)
	}
}

# Developer entry points. CI runs scripts/ci.sh, which chains the same
# targets; keep the two in sync.

GO ?= go

.PHONY: build test race bench vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The selector engine's determinism contract is only believable under the
# race detector: the equivalence tests spawn worker counts 1, 2, 7, and
# GOMAXPROCS over shared candidate arrays.
race:
	$(GO) test -race ./internal/dynim/... ./internal/knn/... ./internal/parallel/...

# Paper-evaluation benchmarks (bench_test.go). -benchtime 3x keeps the
# campaign replays tractable; see EXPERIMENTS.md for the recorded numbers.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x .

vet:
	$(GO) vet ./...

ci:
	./scripts/ci.sh

# Developer entry points. CI runs scripts/ci.sh, which chains the same
# targets; keep the two in sync.

GO ?= go

.PHONY: build test race bench bench-micro bench-diff kvbench vet lint trace chaos matrix matrix-update scenarios ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The selector engine's determinism contract is only believable under the
# race detector, and the coordination layers (workflow manager, scheduler,
# network store, feedback loop) drive real goroutine interleavings in their
# tests — so the whole module runs under -race, not a hand-picked subset.
race:
	$(GO) test -race ./...

# Paper-evaluation benchmarks (bench_test.go). -benchtime 3x keeps the
# campaign replays tractable; see EXPERIMENTS.md for the recorded numbers.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x .

# Hot-path micro-benchmarks for the three engines the profiler flagged:
# the virtual clock's event loop, the scheduler's resource matcher, and
# the dynamic-importance rank refresh. A/B numbers live in EXPERIMENTS.md
# and DESIGN.md §11.
bench-micro:
	$(GO) test -run '^$$' -bench 'BenchmarkVirtual|BenchmarkMatcher|BenchmarkFPS' \
		-benchmem ./internal/vclock/ ./internal/sched/ ./internal/dynim/

# Compare the committed perf trajectory: the pre-optimization baseline
# reports against the post-optimization ones. Deterministic replay metrics
# must match exactly; timing/alloc metrics are thresholded.
bench-diff:
	$(GO) run ./scripts/benchdiff BENCH_baseline.json BENCH_optimized.json
	$(GO) run ./scripts/benchdiff BENCH_baseline_full.json BENCH_optimized_full.json

# Regenerate the kvstore feedback-path trajectory: the single-connection
# baseline vs. the pipelined cluster client, both at the modeled 100µs
# cluster-interconnect RTT (see cmd/kvstore-bench and docs/KVSTORE.md),
# then enforce the pipelined speedup floor on the fresh pair.
kvbench:
	$(GO) run ./cmd/kvstore-bench -mode baseline  -rtt 100us -out BENCH_kvstore_baseline.json
	$(GO) run ./cmd/kvstore-bench -mode pipelined -rtt 100us -out BENCH_kvstore_optimized.json
	$(GO) run ./cmd/kvstore-bench -mode compare \
		-compare BENCH_kvstore_baseline.json,BENCH_kvstore_optimized.json -min-speedup 10

vet:
	$(GO) vet ./...

# Static analysis: go vet plus the project's own analyzer suite — the
# per-package analyzers (determinism, lockdiscipline, errdiscipline,
# doccomment) and the interprocedural ones (goroutinelifecycle, lockorder,
# channeldiscipline), with the stale-suppression audit and a wall-clock
# budget. See internal/lint, docs/LINT.md, and DESIGN.md §8. Non-zero exit
# on any finding.
lint: vet
	$(GO) run ./cmd/mummi-lint -unused-suppressions -budget 60s ./...

# Observability demo: replay a small campaign with tracing, metrics, and a
# heartbeat, validate the artifacts, and leave trace.json ready to open in
# Perfetto (https://ui.perfetto.dev) or chrome://tracing. See
# docs/OBSERVABILITY.md.
trace:
	$(GO) run ./cmd/mummi-sim campaign -scale 0.05 -heartbeat 4h \
		-trace trace.json -metrics metrics.json
	$(GO) run ./scripts/tracecheck trace.json metrics.json

# Chaos demo: replay a small campaign with every fault class at aggressive
# rates and print the fault/recovery ledger. Same seed => byte-identical
# output; see docs/RESILIENCE.md and the ci.sh chaos smoke.
chaos:
	$(GO) run ./cmd/mummi-sim campaign -scale 0.02 -seed 7 \
		-faults 'store-transient-error:0.10;store-latency-spike:0.05;store-permanent-error:0.01;node-crash:8/day;job-hang:12/day;wm-crash:2/day'

# Scenario matrix: replay every committed workflow instance under
# scenarios/ and gate each against its committed
# BENCH_scenario_<name>.json ledger — deterministic metrics exact, timing
# thresholded. See docs/SCENARIOS.md.
matrix:
	$(GO) run ./scripts/matrix
	$(GO) run ./scripts/matrix -scenarios scenarios/generated

# Rewrite the committed per-scenario ledgers after an intentional
# behaviour change; commit the resulting diff alongside the change that
# caused it.
matrix-update:
	$(GO) run ./scripts/matrix -update
	$(GO) run ./scripts/matrix -scenarios scenarios/generated -update

# Regenerate the committed scenario files: the named catalog
# (internal/trace/catalog.go) plus the fixed Gen(42, 3) sweep that ci.sh
# gates under scenarios/generated/. TestCommittedScenariosMatchCatalog
# pins scenarios/*.trace.json to exactly the catalog output.
scenarios:
	$(GO) run ./cmd/mummi-sim trace gen -catalog -outdir scenarios
	$(GO) run ./cmd/mummi-sim trace gen -seed 42 -n 3 -outdir scenarios/generated

ci:
	./scripts/ci.sh

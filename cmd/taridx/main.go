// Command taridx manages indexed tar archives (the paper's pytaridx):
// create archives from files, list and extract entries with random access,
// and verify/rebuild indexes after damage. Archives remain standard tar
// files readable by any decoder.
//
// Usage:
//
//	taridx put     <archive.tar> <key> [file]   # file or stdin
//	taridx get     <archive.tar> <key>          # to stdout
//	taridx list    <archive.tar>
//	taridx delete  <archive.tar> <key>
//	taridx stats   <archive.tar>
//	taridx rebuild <archive.tar>                # reindex from the tar
package main

import (
	"fmt"
	"io"
	"os"

	"mummi/internal/errutil"
	"mummi/internal/taridx"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "taridx:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	if len(args) < 2 {
		return usage()
	}
	cmd, path := args[0], args[1]
	switch cmd {
	case "put":
		if len(args) < 3 {
			return usage()
		}
		var data []byte
		var err error
		if len(args) >= 4 {
			data, err = os.ReadFile(args[3])
		} else {
			data, err = io.ReadAll(os.Stdin)
		}
		if err != nil {
			return err
		}
		a, err := taridx.Open(path)
		if err != nil {
			return err
		}
		defer errutil.CaptureClose(&err, a.Close)
		return a.Put(args[2], data)
	case "get":
		if len(args) < 3 {
			return usage()
		}
		a, err := taridx.Open(path)
		if err != nil {
			return err
		}
		defer errutil.CaptureClose(&err, a.Close)
		b, err := a.Get(args[2])
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	case "list":
		a, err := taridx.Open(path)
		if err != nil {
			return err
		}
		defer errutil.CaptureClose(&err, a.Close)
		for _, k := range a.Keys() {
			fmt.Println(k)
		}
		return nil
	case "delete":
		if len(args) < 3 {
			return usage()
		}
		a, err := taridx.Open(path)
		if err != nil {
			return err
		}
		defer errutil.CaptureClose(&err, a.Close)
		return a.Delete(args[2])
	case "stats":
		a, err := taridx.Open(path)
		if err != nil {
			return err
		}
		defer errutil.CaptureClose(&err, a.Close)
		s := a.Stats()
		fmt.Printf("keys=%d appends=%d reads=%d bytes_read=%d archive_bytes=%d\n",
			s.Keys, s.Appends, s.Reads, s.BytesRead, s.ArchiveLen)
		return nil
	case "rebuild":
		// Open rebuilds automatically when the index is missing; force it
		// by removing the sidecar first.
		if err := os.Remove(path + taridx.IndexSuffix); err != nil && !os.IsNotExist(err) {
			return err
		}
		a, err := taridx.Open(path)
		if err != nil {
			return err
		}
		defer errutil.CaptureClose(&err, a.Close)
		fmt.Printf("rebuilt index: %d keys\n", a.Len())
		return nil
	default:
		return usage()
	}
}

func usage() error {
	return fmt.Errorf("usage: taridx put|get|list|delete|stats|rebuild <archive.tar> [key] [file]")
}

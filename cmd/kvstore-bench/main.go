// Command kvstore-bench measures the kv store's feedback-path throughput:
// the access pattern of the CG→continuum loop (thousands of ~850 B frame
// records written, read back, and tagged per iteration, §4.2/Fig. 7),
// executed two ways that bracket the perf trajectory:
//
//	baseline   the pre-pipelining path: one synchronous connection per
//	           node, one key per command, every operation a full
//	           serialized round trip. Per-key cost is dominated by the
//	           four syscalls and two scheduler handoffs of the round
//	           trip, which no amount of concurrency hides on a busy host.
//	pipelined  the AsyncClient-backed cluster: keys grouped per shard,
//	           moved in multi-key MSET/MGET bursts through pipelined
//	           connections — per-key cost collapses to one parse and one
//	           map operation, with the round-trip machinery amortized
//	           across the burst.
//
// The -rtt flag models the cluster interconnect: the paper's Redis nodes
// were reached over the management fabric, where a TCP round trip costs on
// the order of 100µs — not the ~6µs of this harness's loopback sockets.
// Round-trip latency is exactly what pipelining amortizes, so the committed
// benchmark pair runs with -rtt 100µs (each socket read that returns fresh
// bytes pays one propagation delay, injected through ClientOptions.WrapConn).
// The delay is recorded in the report (rtt_us) and enforced identically for
// both modes; -rtt 0 measures raw loopback, where the speedup is smaller
// because the baseline's round trips are unrealistically cheap.
//
// Each run emits a mummi-bench/v1 JSON report; the committed
// BENCH_kvstore_baseline.json / BENCH_kvstore_optimized.json pair is gated
// by scripts/benchdiff in CI, and `-mode compare` enforces the pipelined
// client's speedup floor:
//
//	kvstore-bench -mode baseline  -rtt 100us -out BENCH_kvstore_baseline.json
//	kvstore-bench -mode pipelined -rtt 100us -out BENCH_kvstore_optimized.json
//	kvstore-bench -mode compare -compare BENCH_kvstore_baseline.json,BENCH_kvstore_optimized.json -min-speedup 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mummi/internal/kvstore"
	"mummi/internal/telemetry"
)

func main() {
	mode := flag.String("mode", "pipelined", "baseline|pipelined|compare")
	shards := flag.Int("shards", 3, "in-process server nodes")
	workers := flag.Int("workers", 8, "concurrent client goroutines")
	ops := flag.Int("ops", 20000, "keys per phase (one SET phase, one GET phase)")
	batch := flag.Int("batch", 256, "pipelined mode: keys per MSET/MGET burst")
	valueBytes := flag.Int("value", 850, "value size — the paper's ~850 B identifying record")
	rtt := flag.Duration("rtt", 0, "modeled interconnect round-trip latency (0 = raw loopback)")
	seed := flag.Int64("seed", 1, "report seed field (workload content is fixed)")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	compare := flag.String("compare", "", "compare mode: 'baseline.json,optimized.json'")
	minSpeedup := flag.Float64("min-speedup", 10, "compare mode: required ops_per_sec ratio")
	flag.Parse()

	if err := run(*mode, *shards, *workers, *ops, *batch, *valueBytes, *rtt, *seed, *out, *compare, *minSpeedup); err != nil {
		fmt.Fprintln(os.Stderr, "kvstore-bench:", err)
		os.Exit(1)
	}
}

// report matches the mummi-bench/v1 shape benchdiff consumes.
type report struct {
	Schema      string                        `json:"schema"`
	Scale       float64                       `json:"scale"`
	Seed        int64                         `json:"seed"`
	Full        bool                          `json:"full"`
	Workers     int                           `json:"workers"`
	Experiments map[string]map[string]float64 `json:"experiments"`
}

// runner executes one phase of the workload over a prebuilt key list and
// reports per-key latency into hist.
type runner interface {
	setPhase(keys []string, value []byte, workers int, hist *telemetry.Histogram) error
	getPhase(keys []string, valueLen int, workers int, hist *telemetry.Histogram) error
	Close() error
}

// ---------------------------------------------------------------------------
// baseline: the pre-pipelining client

// syncCluster reproduces the historical client exactly: one synchronous
// Client per node (internally mutex-serialized, one flushed round trip per
// command, one key per command), keys placed by the shared ring.
type syncCluster struct {
	ring    *kvstore.Ring
	clients []*kvstore.Client
}

func dialSync(addrs []string, opts kvstore.ClientOptions) (*syncCluster, error) {
	s := &syncCluster{ring: kvstore.NewRing(len(addrs), 0)}
	for _, a := range addrs {
		cl, err := kvstore.DialOptions(a, opts)
		if err != nil {
			return nil, err
		}
		s.clients = append(s.clients, cl)
	}
	return s, nil
}

// perKey fans keys out to workers, each key one synchronous operation.
func perKey(keys []string, workers int, hist *telemetry.Histogram, op func(key string) error) error {
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(keys); i += workers {
				t0 := time.Now()
				if err := op(keys[i]); err != nil {
					errs[w] = fmt.Errorf("key %s: %w", keys[i], err)
					return
				}
				hist.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *syncCluster) setPhase(keys []string, value []byte, workers int, hist *telemetry.Histogram) error {
	return perKey(keys, workers, hist, func(k string) error {
		return s.clients[s.ring.Lookup(k)].Set(k, value)
	})
}

func (s *syncCluster) getPhase(keys []string, valueLen int, workers int, hist *telemetry.Histogram) error {
	return perKey(keys, workers, hist, func(k string) error {
		v, err := s.clients[s.ring.Lookup(k)].Get(k)
		if err != nil {
			return err
		}
		if len(v) != valueLen {
			return fmt.Errorf("short value: %d bytes", len(v))
		}
		return nil
	})
}

func (s *syncCluster) Close() error {
	var first error
	for _, cl := range s.clients {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---------------------------------------------------------------------------
// pipelined: the batched cluster client

// pipeCluster drives the production Cluster client the way the feedback
// loop does: multi-key bursts, grouped per shard, pipelined per connection.
type pipeCluster struct {
	c     *kvstore.Cluster
	batch int
}

// perBurst splits keys into consecutive bursts claimed by workers off a
// shared counter; each burst is one batched cluster operation. Latency is
// recorded per key (burst latency / burst size) so histograms stay
// comparable with the baseline's per-op observations.
func perBurst(keys []string, batch, workers int, hist *telemetry.Histogram, op func(burst []string) error) error {
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(batch))) - batch
				if lo >= len(keys) {
					return
				}
				hi := lo + batch
				if hi > len(keys) {
					hi = len(keys)
				}
				t0 := time.Now()
				if err := op(keys[lo:hi]); err != nil {
					errs[w] = fmt.Errorf("burst at %d: %w", lo, err)
					return
				}
				perKeyMs := float64(time.Since(t0)) / float64(time.Millisecond) / float64(hi-lo)
				for i := lo; i < hi; i++ {
					hist.Observe(perKeyMs)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (p *pipeCluster) setPhase(keys []string, value []byte, workers int, hist *telemetry.Histogram) error {
	return perBurst(keys, p.batch, workers, hist, func(burst []string) error {
		vals := make([][]byte, len(burst))
		for i := range vals {
			vals[i] = value
		}
		return p.c.MSetSlice(burst, vals)
	})
}

func (p *pipeCluster) getPhase(keys []string, valueLen int, workers int, hist *telemetry.Histogram) error {
	return perBurst(keys, p.batch, workers, hist, func(burst []string) error {
		vals, err := p.c.MGetSlice(burst)
		if err != nil {
			return err
		}
		for i, v := range vals {
			if len(v) != valueLen {
				return fmt.Errorf("bad value at %s: %d bytes", burst[i], len(v))
			}
		}
		return nil
	})
}

func (p *pipeCluster) Close() error { return p.c.Close() }

// ---------------------------------------------------------------------------

// delayConn models interconnect propagation: every Read that returns fresh
// bytes owes one round-trip delay, as if the data had crossed the cluster
// fabric. A synchronous client therefore pays the RTT once per command; a
// pipelined connection pays it once per burst, amortized across every key
// the burst carries — which is precisely the economics pipelining exploits.
//
// The debt is settled with deficit accounting: owed delay accumulates and
// is slept off in chunks of at least one timer quantum, with any oversleep
// credited against future debt. The long-run average therefore injects
// exactly rtt per delivering read even on hosts whose sleep granularity is
// far coarser than the modeled latency.
type delayConn struct {
	net.Conn
	rtt  time.Duration
	owed time.Duration
}

// sleepQuantum is the shortest sleep worth issuing: requests below the
// host timer resolution oversleep by an order of magnitude, so debt is
// batched until it is at least this large.
const sleepQuantum = time.Millisecond

func (d *delayConn) Read(p []byte) (int, error) {
	n, err := d.Conn.Read(p)
	if n > 0 {
		d.owed += d.rtt
		if d.owed >= sleepQuantum {
			t0 := time.Now()
			time.Sleep(d.owed)
			d.owed -= time.Since(t0)
		}
	}
	return n, err
}

// ---------------------------------------------------------------------------

func run(mode string, shards, workers, ops, batch, valueBytes int, rtt time.Duration, seed int64, out, compare string, minSpeedup float64) error {
	if mode == "compare" {
		return runCompare(compare, minSpeedup)
	}
	if workers < 1 || ops < 1 || shards < 1 || batch < 1 {
		return fmt.Errorf("invalid workload: shards=%d workers=%d ops=%d batch=%d", shards, workers, ops, batch)
	}

	addrs, shutdown, err := kvstore.LaunchCluster(shards)
	if err != nil {
		return err
	}
	defer shutdown()

	opts := kvstore.ClientOptions{}
	if rtt > 0 {
		opts.WrapConn = func(conn net.Conn) net.Conn { return &delayConn{Conn: conn, rtt: rtt} }
	}

	var r runner
	switch mode {
	case "baseline":
		r, err = dialSync(addrs, opts)
		batch = 1 // every command carries one key
	case "pipelined":
		var cl *kvstore.Cluster
		cl, err = kvstore.DialClusterOptions(addrs, opts)
		r = &pipeCluster{c: cl, batch: batch}
	default:
		return fmt.Errorf("unknown mode %q (baseline|pipelined|compare)", mode)
	}
	if err != nil {
		return err
	}
	defer r.Close() //lint:allow errdiscipline -- bench process exits right after; a close failure cannot affect the recorded measurements

	value := make([]byte, valueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	keys := make([]string, ops)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-%07d", i)
	}
	reg := telemetry.NewRegistry()
	setHist := reg.Histogram("kvstore.set_latency_ms", "ms", nil)
	getHist := reg.Histogram("kvstore.get_latency_ms", "ms", nil)

	start := time.Now()
	if err := r.setPhase(keys, value, workers, setHist); err != nil {
		return err
	}
	setWall := time.Since(start)
	start = time.Now()
	if err := r.getPhase(keys, valueBytes, workers, getHist); err != nil {
		return err
	}
	getWall := time.Since(start)

	snap := reg.Snapshot()
	total := 2 * ops
	wall := setWall + getWall
	metrics := map[string]float64{
		// Deterministic workload shape: exact-matched by benchdiff.
		"ops":         float64(total),
		"shards":      float64(shards),
		"bench_users": float64(workers),
		"value_bytes": float64(valueBytes),
		"batch_keys":  float64(batch),
		"rtt_us":      float64(rtt.Microseconds()),
		// Timing metrics (suffix-thresholded by benchdiff).
		"wall_sec":        wall.Seconds(),
		"set_wall_sec":    setWall.Seconds(),
		"get_wall_sec":    getWall.Seconds(),
		"ops_per_sec":     float64(total) / wall.Seconds(),
		"set_ops_per_sec": float64(ops) / setWall.Seconds(),
		"get_ops_per_sec": float64(ops) / getWall.Seconds(),
	}
	for _, h := range snap.Histograms {
		prefix := strings.TrimSuffix(strings.TrimPrefix(h.Name, "kvstore."), "_latency_ms")
		metrics[prefix+"_p50_sec"] = histQuantile(h, 0.50) / 1000
		metrics[prefix+"_p99_sec"] = histQuantile(h, 0.99) / 1000
	}

	rep := report{Schema: "mummi-bench/v1", Scale: 1, Seed: seed, Workers: workers,
		Experiments: map[string]map[string]float64{"kvstore_feedback": metrics}}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	fmt.Fprintf(os.Stderr, "kvstore-bench %s: %d ops over %d shards, %d workers, batch %d: %.0f ops/sec (set %.0f/s, get %.0f/s)\n",
		mode, total, shards, workers, batch, metrics["ops_per_sec"], metrics["set_ops_per_sec"], metrics["get_ops_per_sec"])
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// histQuantile interpolates quantile q (0..1) from a fixed-bucket snapshot,
// in the histogram's native unit.
func histQuantile(h telemetry.HistogramSnap, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var seen float64
	lo := 0.0
	for i, c := range h.Counts {
		hi := h.Max
		if i < len(h.Bounds) {
			hi = h.Bounds[i]
		}
		if seen+float64(c) >= rank {
			if c == 0 {
				return hi
			}
			frac := (rank - seen) / float64(c)
			return lo + frac*(hi-lo)
		}
		seen += float64(c)
		lo = hi
	}
	return h.Max
}

// runCompare loads two reports and enforces the pipelined speedup floor.
func runCompare(spec string, minSpeedup float64) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-compare wants 'baseline.json,optimized.json', got %q", spec)
	}
	load := func(path string) (*report, error) {
		data, err := os.ReadFile(strings.TrimSpace(path))
		if err != nil {
			return nil, err
		}
		var r report
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if !strings.HasPrefix(r.Schema, "mummi-bench/") {
			return nil, fmt.Errorf("%s: unexpected schema %q", path, r.Schema)
		}
		return &r, nil
	}
	base, err := load(parts[0])
	if err != nil {
		return err
	}
	opt, err := load(parts[1])
	if err != nil {
		return err
	}
	bm, om := base.Experiments["kvstore_feedback"], opt.Experiments["kvstore_feedback"]
	if bm == nil || om == nil {
		return fmt.Errorf("reports missing the kvstore_feedback experiment")
	}
	bops, oops := bm["ops_per_sec"], om["ops_per_sec"]
	if bops <= 0 || oops <= 0 {
		return fmt.Errorf("non-positive ops_per_sec (baseline %.1f, optimized %.1f)", bops, oops)
	}
	speedup := oops / bops
	fmt.Printf("kvstore-bench compare: baseline %.0f ops/sec, pipelined %.0f ops/sec: %.1fx (floor %.1fx)\n",
		bops, oops, speedup, minSpeedup)
	if speedup < minSpeedup {
		return fmt.Errorf("pipelined speedup %.2fx below the %.1fx floor", speedup, minSpeedup)
	}
	return nil
}

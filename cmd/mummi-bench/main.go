// Command mummi-bench regenerates the paper's evaluation: every table and
// figure of §5 plus the headline scaling claims. Experiments that replay
// the campaign (Table 1, Figs 3–6, the §5.1 counts) share one virtual-time
// replay; the systems experiments (Fig 7, Fig 8, the Flux fix, taridx,
// feedback backends, selector scaling, the bundling ablation) run directly
// against the real components.
//
// Usage:
//
//	mummi-bench -exp all                # everything, scaled-down campaign
//	mummi-bench -exp fig6 -scale 1.0    # full 600,600-node-hour replay
//	mummi-bench -exp fig7               # KV feedback query sweep
//	mummi-bench -exp ml165x -json       # machine-readable metrics on stdout
//
// With -json the human-readable sections are suppressed and one JSON
// object is written to stdout: {"schema": "mummi-bench/v1", ...,
// "experiments": {"<name>": {"<metric>": <number>, ...}}}. Durations are
// reported in seconds. Redirecting that object to a BENCH_<exp>.json file
// is the repo's perf-trajectory workflow (see EXPERIMENTS.md). The report
// shape and its comparison semantics live in internal/benchfmt.
//
// With -trace-in the shared campaign replay comes from a workflow instance
// (docs/SCENARIOS.md) instead of -scale/-seed/-faults; the systems
// experiments keep their own flags. (-trace, without the -in, is the
// telemetry flag for Chrome trace output — an older surface that keeps its
// name.)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mummi/internal/benchfmt"
	"mummi/internal/campaign"
	"mummi/internal/telemetry"
	"mummi/internal/trace"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment: table1|fig3|fig4|fig5|fig6|counts|fig7|fig8|fluxfix|taridx|feedback12x|ml165x|bundling|inventory|all")
	scale := flag.Float64("scale", 0.25, "campaign scale factor (1.0 = full 600,600 node-hours)")
	seed := flag.Int64("seed", 1, "campaign seed")
	full := flag.Bool("full", false, "run systems experiments at full paper scale (slower)")
	workers := flag.Int("workers", 0, "selector rank-update fan-out (0 = GOMAXPROCS; output identical for any value)")
	jsonOut := flag.Bool("json", false, "emit one JSON object of per-experiment metrics instead of text")
	faultSpec := flag.String("faults", "",
		"chaos plan for the campaign replay: JSON file, inline JSON, or 'class:rate;...' spec (see docs/RESILIENCE.md)")
	wmInstances := flag.Int("wm-instances", 1,
		"workflow-manager fleet size for the campaign replay (>1 = lease-coordinated distributed WM; see docs/RESILIENCE.md)")
	traceIn := flag.String("trace-in", "",
		"workflow instance for the campaign replay (replaces -scale/-seed/-faults for it; see docs/SCENARIOS.md)")
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	if err := run(*exp, *scale, *seed, *full, *workers, *wmInstances, *jsonOut, *faultSpec, *traceIn, &tf); err != nil {
		fmt.Fprintln(os.Stderr, "mummi-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, scale float64, seed int64, full bool, workers, wmInstances int, jsonOut bool, faultSpec, traceIn string, tf *telemetry.Flags) error {
	valid := map[string]bool{"all": true, "table1": true, "fig3": true,
		"fig4": true, "fig5": true, "fig6": true, "counts": true,
		"fig7": true, "fig8": true, "fluxfix": true, "taridx": true,
		"feedback12x": true, "ml165x": true, "bundling": true, "inventory": true}
	want := map[string]bool{}
	for _, e := range strings.Split(exp, ",") {
		name := strings.TrimSpace(e)
		if !valid[name] {
			return fmt.Errorf("unknown experiment %q (see -exp in -help for the list)", name)
		}
		want[name] = true
	}
	all := want["all"]

	rep := benchfmt.New(scale, seed, full, workers)
	section := func(name, body string) {
		if !jsonOut {
			fmt.Printf("== %s ==\n%s\n", name, body)
		}
	}
	record := rep.Record

	needCampaign := all || want["table1"] || want["fig3"] || want["fig4"] ||
		want["fig5"] || want["fig6"] || want["counts"]
	// The observability flags attach to the shared campaign replay, so a
	// perf-trajectory run can ship a trace/metrics artifact alongside its
	// BENCH_*.json.
	tel, srv, err := tf.Build()
	if err != nil {
		return err
	}
	defer func() {
		if err := tf.Finish(tel, srv); err != nil {
			fmt.Fprintln(os.Stderr, "mummi-bench:", err)
		}
	}()

	var res *campaign.Result
	if needCampaign {
		var cfg campaign.Config
		if traceIn != "" {
			if faultSpec != "" {
				return fmt.Errorf("-trace-in carries its own fault plan; drop -faults")
			}
			b, err := os.ReadFile(traceIn)
			if err != nil {
				return err
			}
			t, err := trace.Parse(b)
			if err != nil {
				return fmt.Errorf("%s: %w", traceIn, err)
			}
			if cfg, err = t.Config(); err != nil {
				return err
			}
			cfg.SelectorWorkers = workers
			// The report must identify the replay it measured: the scenario's
			// seed, and scale 0 (the paper-schedule scale factor did not apply).
			rep.Scale, rep.Seed = 0, cfg.Seed
			if !jsonOut {
				fmt.Printf("campaign replay from scenario %s (%s)\n", t.Name, t.Description)
			}
		} else {
			feedbackEvery := time.Duration(0)
			if faultSpec != "" {
				// Store faults need feedback I/O to have something to hit.
				feedbackEvery = 30 * time.Minute
			}
			opts := campaign.Options{
				Scale: scale, Seed: seed, Workers: workers,
				FeedbackEvery: feedbackEvery, FaultSpec: faultSpec,
				WMInstances: wmInstances,
			}
			var err error
			if cfg, err = opts.Build(); err != nil {
				return err
			}
		}
		// Fleet replays need a live registry even when no -metrics/-trace
		// flag asked for one: the fleet section below reads the lease
		// renew-age histogram back out of it.
		if cfg.WMInstances > 1 && tel == nil {
			tel = telemetry.New(telemetry.Options{})
		}
		cfg.Telemetry = tel
		if tf.HeartbeatEvery > 0 {
			cfg.HeartbeatEvery = tf.HeartbeatEvery
			cfg.HeartbeatWriter = os.Stderr
		}
		start := time.Now()
		if !jsonOut && traceIn == "" {
			fmt.Printf("== campaign replay (scale %.2f) ==\n", scale)
		}
		// Allocation stats bracket the replay so GC-pressure wins show up in
		// the trajectory, not just wall-clock. A GC cycle first gives the
		// deltas a clean epoch.
		runtime.GC()
		var msBefore runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		var err error
		res, err = campaign.Run(cfg)
		if err != nil {
			return err
		}
		replayWall := time.Since(start)
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		if !jsonOut {
			fmt.Printf("replayed %d runs, %v, in %v (%d matcher visits, %.1f MB allocated, %d GCs)\n\n",
				res.RunsDone, res.TotalNodeHours, replayWall.Round(time.Millisecond),
				res.MatcherVisits,
				float64(msAfter.TotalAlloc-msBefore.TotalAlloc)/(1<<20),
				msAfter.NumGC-msBefore.NumGC)
		}
		allocBytes := float64(msAfter.TotalAlloc - msBefore.TotalAlloc)
		allocObjs := float64(msAfter.Mallocs - msBefore.Mallocs)
		record("campaign", map[string]float64{
			"runs_done":       float64(res.RunsDone),
			"node_hours":      float64(res.TotalNodeHours),
			"matcher_visits":  float64(res.MatcherVisits),
			"replay_wall_sec": replayWall.Seconds(),
			// alloc_* metrics are machine- and GC-schedule-dependent;
			// bench-diff treats them like timings, never exact-matched.
			"alloc_bytes":           allocBytes,
			"alloc_objects":         allocObjs,
			"alloc_bytes_per_run":   allocBytes / float64(res.RunsDone),
			"alloc_objects_per_run": allocObjs / float64(res.RunsDone),
			"alloc_gc_cycles":       float64(msAfter.NumGC - msBefore.NumGC),
		})
		if cfg.Faults != nil {
			if !jsonOut {
				fmt.Printf("chaos: %d node crashes, %d job hangs, %d wm restarts, %d store put errors, %d anomalies\n\n",
					res.NodeCrashes, res.JobHangs, res.WMRestarts, res.StorePutErrors, len(res.Anomalies))
			}
			record("chaos", map[string]float64{
				"node_crashes":     float64(res.NodeCrashes),
				"job_hangs":        float64(res.JobHangs),
				"wm_restarts":      float64(res.WMRestarts),
				"store_put_errors": float64(res.StorePutErrors),
				"anomalies":        float64(len(res.Anomalies)),
			})
		}
		if cfg.WMInstances > 1 {
			reg := tel.Registry()
			m := map[string]float64{
				"wm_instances":            float64(cfg.WMInstances),
				"wm_crashes":              float64(res.WMCrashes),
				"wm_adoptions_total":      float64(res.WMAdoptions),
				"lease_expirations_total": float64(res.LeaseExpirations),
				"lease_renewals_total":    float64(reg.Counter("wmfleet.lease_renewals_total").Value()),
			}
			// Renew-age histogram summary: how far into their TTL leases
			// were when renewed (virtual time, so deterministic per seed).
			for _, h := range reg.Snapshot().Histograms {
				if h.Name != "wmfleet.lease_renew_age_ms" || h.Count == 0 {
					continue
				}
				m["lease_renew_age_count"] = float64(h.Count)
				m["lease_renew_age_mean_ms"] = h.Sum / float64(h.Count)
				m["lease_renew_age_min_ms"] = h.Min
				m["lease_renew_age_max_ms"] = h.Max
			}
			if !jsonOut {
				fmt.Printf("fleet: %d wm instances, %d crashes, %d adoptions, %d lease expirations\n\n",
					cfg.WMInstances, res.WMCrashes, res.WMAdoptions, res.LeaseExpirations)
			}
			record("fleet", m)
		}
	}

	if all || want["table1"] {
		section("Table 1: runs at different computational scales", res.Table1Text())
		record("table1", map[string]float64{
			"runs_done":  float64(res.RunsDone),
			"node_hours": float64(res.TotalNodeHours),
		})
	}
	if all || want["fig3"] {
		section("Figure 3: simulation length distributions", res.Fig3Text())
		record("fig3", map[string]float64{
			"cg_sims":    float64(len(res.CGLengthsUs)),
			"aa_sims":    float64(len(res.AALengthsNs)),
			"cg_mean_us": mean(res.CGLengthsUs),
			"aa_mean_ns": mean(res.AALengthsNs),
		})
	}
	if all || want["fig4"] {
		section("Figure 4: per-scale simulation performance", res.Fig4Text())
		var cg, aa float64
		for _, s := range res.CGPerf {
			cg += s.PerDay
		}
		for _, s := range res.AAPerf {
			aa += s.PerDay
		}
		m := map[string]float64{}
		if len(res.CGPerf) > 0 {
			m["cg_us_per_day"] = cg / float64(len(res.CGPerf))
		}
		if len(res.AAPerf) > 0 {
			m["aa_ns_per_day"] = aa / float64(len(res.AAPerf))
		}
		record("fig4", m)
	}
	if all || want["fig5"] {
		section("Figure 5: resource occupancy", res.Fig5Text())
		record("fig5", map[string]float64{
			"gpu_mean_pct":     res.GPUMeanPct,
			"gpu_ge98_pct":     res.GPUAtLeast98Frac * 100,
			"cpu_mean_pct":     res.CPUMeanPct,
			"gpu_median_pct":   res.GPUMedianPct,
			"cpu_median_pct":   res.CPUMedianPct,
			"profile_events_n": float64(len(res.ProfileEvents)),
		})
	}
	if all || want["fig6"] {
		section("Figure 6: job scheduling history", res.Fig6Text())
		record("fig6", map[string]float64{
			"timeline_1000_n": float64(len(res.Timeline1000)),
			"timeline_4000_n": float64(len(res.Timeline4000)),
		})
	}
	if all || want["counts"] {
		section("§5.1 campaign counts", res.CountsText())
		record("counts", map[string]float64{
			"snapshots":           float64(res.Snapshots),
			"patches":             float64(res.Patches),
			"cg_selected":         float64(res.CGSelected),
			"cg_frame_candidates": float64(res.CGFrameCandidates),
			"aa_selected":         float64(res.AASelected),
			"files":               float64(res.Files),
		})
	}

	if all || want["fig7"] {
		counts := []int{1000, 5000, 10000, 20000, 40000, 70000}
		nodes := 8
		if full {
			nodes = 20 // the paper's Redis cluster size
		}
		rows, err := campaign.Fig7KVQueries(counts, nodes, 850)
		if err != nil {
			return err
		}
		section("Figure 7: in-memory DB feedback queries", campaign.Fig7Text(rows))
		last := rows[len(rows)-1]
		record("fig7", map[string]float64{
			"frames":       float64(last.Frames),
			"keys_per_sec": float64(last.Frames) / last.RetrieveKeys.Seconds(),
			"vals_per_sec": float64(last.Frames) / last.RetrieveValues.Seconds(),
			"dels_per_sec": float64(last.Frames) / last.Delete.Seconds(),
		})
	}
	if all || want["fig8"] {
		r := campaign.Fig8AAFeedback(2000, 6, 2*time.Second, seed)
		section("Figure 8: AA-to-CG feedback latency", campaign.Fig8Text(r))
		record("fig8", map[string]float64{
			"iterations":        float64(len(r.Rows)),
			"within_target_pct": r.WithinTarget * 100,
		})
	}
	if all || want["fluxfix"] {
		nodes, jobs := 1000, 6000
		if full {
			nodes, jobs = 4000, 24000
		}
		r, err := campaign.FluxFix670(nodes, jobs)
		if err != nil {
			return err
		}
		section("Flux fix: first-match vs exhaustive matching", campaign.FluxFixText(r))
		record("fluxfix", map[string]float64{
			"exhaustive_visits":    float64(r.ExhaustiveVisits),
			"first_match_visits":   float64(r.FirstMatchVisits),
			"visit_ratio":          r.VisitRatio(),
			"exhaustive_wall_sec":  r.ExhaustiveWall.Seconds(),
			"first_match_wall_sec": r.FirstMatchWall.Seconds(),
		})
	}
	if all || want["taridx"] {
		files := 2000
		if full {
			files = 20000
		}
		dir, err := os.MkdirTemp("", "mummi-taridx")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		r, err := campaign.TaridxThroughput(dir, files, 156_000)
		if err != nil {
			return err
		}
		section("§5.2 taridx throughput", campaign.TaridxText(r))
		record("taridx", map[string]float64{
			"files":          float64(r.Files),
			"inodes":         float64(r.Inodes),
			"files_per_sec":  r.FilesPerSec(),
			"mb_per_sec":     r.MBPerSec(),
			"write_wall_sec": r.WriteWall.Seconds(),
			"read_wall_sec":  r.ReadWall.Seconds(),
		})
	}
	if all || want["feedback12x"] {
		frames := 5000
		if full {
			frames = 20000
		}
		dir, err := os.MkdirTemp("", "mummi-fb")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		r, err := campaign.Feedback12x(dir, frames)
		if err != nil {
			return err
		}
		section("§4.2 feedback backends (the >12x claim)", campaign.FeedbackText(r))
		record("feedback12x", map[string]float64{
			"frames":      float64(r.Frames),
			"fs_wall_sec": r.FSTime.Seconds(),
			"kv_wall_sec": r.KVTime.Seconds(),
			"speedup_x":   r.Speedup(),
		})
	}
	if all || want["ml165x"] {
		fpsQ, binned := 35000, 1_000_000
		if full {
			binned = 9_000_000 // the campaign's 9M frame candidates
		}
		r, err := campaign.SelectorScaling(fpsQ, binned, workers, seed)
		if err != nil {
			return err
		}
		section("§4.4 selector scaling (the 165x claim)", campaign.SelectorText(r))
		record("ml165x", map[string]float64{
			"fps_queue":          float64(r.FPSQueue),
			"fps_refresh_sec":    r.FPSUpdateTime.Seconds(),
			"binned_n":           float64(r.BinnedN),
			"binned_add_sec":     float64(r.BinnedAddTime.Seconds()),
			"binned_select_sec":  r.BinnedSelTime.Seconds(),
			"binned_madds_per_s": float64(r.BinnedN) / r.BinnedAddTime.Seconds() / 1e6,
			"candidate_ratio":    r.CandidateRatio,
		})
	}
	if all || want["bundling"] {
		r, err := campaign.BundlingAblation(16, 4, seed)
		if err != nil {
			return err
		}
		section("§4.3 bundling ablation", campaign.BundlingText(r))
		record("bundling", map[string]float64{
			"bundled_util_pct":       r.BundledUtilization * 100,
			"unbundled_util_pct":     r.UnbundledUtil * 100,
			"bundled_makespan_sec":   r.BundledMakespan.Seconds(),
			"unbundled_makespan_sec": r.UnbundledMakespan.Seconds(),
		})
	}
	if all || want["inventory"] {
		fractions := []float64{0.02, 0.1, 0.25, 0.5, 1.0}
		rows, err := campaign.InventoryAblation(fractions, seed)
		if err != nil {
			return err
		}
		section("§4.4 inventory ablation (readiness vs staleness)", campaign.InventoryText(rows))
		m := map[string]float64{}
		for _, row := range rows {
			m[fmt.Sprintf("gpu_mean_pct_at_%.2f", row.Fraction)] = row.GPUMeanPct
			m[fmt.Sprintf("cpu_mean_pct_at_%.2f", row.Fraction)] = row.CPUMeanPct
		}
		record("inventory", m)
	}

	if jsonOut {
		b, err := rep.Marshal()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	return nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Command mummi-bench regenerates the paper's evaluation: every table and
// figure of §5 plus the headline scaling claims. Experiments that replay
// the campaign (Table 1, Figs 3–6, the §5.1 counts) share one virtual-time
// replay; the systems experiments (Fig 7, Fig 8, the Flux fix, taridx,
// feedback backends, selector scaling, the bundling ablation) run directly
// against the real components.
//
// Usage:
//
//	mummi-bench -exp all                # everything, scaled-down campaign
//	mummi-bench -exp fig6 -scale 1.0    # full 600,600-node-hour replay
//	mummi-bench -exp fig7               # KV feedback query sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mummi/internal/campaign"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment: table1|fig3|fig4|fig5|fig6|counts|fig7|fig8|fluxfix|taridx|feedback12x|ml165x|bundling|inventory|all")
	scale := flag.Float64("scale", 0.25, "campaign scale factor (1.0 = full 600,600 node-hours)")
	seed := flag.Int64("seed", 1, "campaign seed")
	full := flag.Bool("full", false, "run systems experiments at full paper scale (slower)")
	flag.Parse()

	if err := run(*exp, *scale, *seed, *full); err != nil {
		fmt.Fprintln(os.Stderr, "mummi-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, scale float64, seed int64, full bool) error {
	want := map[string]bool{}
	for _, e := range strings.Split(exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	needCampaign := all || want["table1"] || want["fig3"] || want["fig4"] ||
		want["fig5"] || want["fig6"] || want["counts"]
	var res *campaign.Result
	if needCampaign {
		cfg := campaign.DefaultConfig()
		cfg.Seed = seed
		if scale < 1.0 {
			cfg.Runs = campaign.ScaledRuns(scale)
		}
		start := time.Now()
		fmt.Printf("== campaign replay (scale %.2f) ==\n", scale)
		var err error
		res, err = campaign.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("replayed %d runs, %v, in %v\n\n", res.RunsDone, res.TotalNodeHours,
			time.Since(start).Round(time.Millisecond))
	}

	section := func(name, body string) {
		fmt.Printf("== %s ==\n%s\n", name, body)
	}

	if all || want["table1"] {
		section("Table 1: runs at different computational scales", res.Table1Text())
	}
	if all || want["fig3"] {
		section("Figure 3: simulation length distributions", res.Fig3Text())
	}
	if all || want["fig4"] {
		section("Figure 4: per-scale simulation performance", res.Fig4Text())
	}
	if all || want["fig5"] {
		section("Figure 5: resource occupancy", res.Fig5Text())
	}
	if all || want["fig6"] {
		section("Figure 6: job scheduling history", res.Fig6Text())
	}
	if all || want["counts"] {
		section("§5.1 campaign counts", res.CountsText())
	}

	if all || want["fig7"] {
		counts := []int{1000, 5000, 10000, 20000, 40000, 70000}
		nodes := 8
		if full {
			nodes = 20 // the paper's Redis cluster size
		}
		rows, err := campaign.Fig7KVQueries(counts, nodes, 850)
		if err != nil {
			return err
		}
		section("Figure 7: in-memory DB feedback queries", campaign.Fig7Text(rows))
	}
	if all || want["fig8"] {
		r := campaign.Fig8AAFeedback(2000, 6, 2*time.Second, seed)
		section("Figure 8: AA-to-CG feedback latency", campaign.Fig8Text(r))
	}
	if all || want["fluxfix"] {
		nodes, jobs := 1000, 6000
		if full {
			nodes, jobs = 4000, 24000
		}
		r, err := campaign.FluxFix670(nodes, jobs)
		if err != nil {
			return err
		}
		section("Flux fix: first-match vs exhaustive matching", campaign.FluxFixText(r))
	}
	if all || want["taridx"] {
		files := 2000
		if full {
			files = 20000
		}
		dir, err := os.MkdirTemp("", "mummi-taridx")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		r, err := campaign.TaridxThroughput(dir, files, 156_000)
		if err != nil {
			return err
		}
		section("§5.2 taridx throughput", campaign.TaridxText(r))
	}
	if all || want["feedback12x"] {
		frames := 5000
		if full {
			frames = 20000
		}
		dir, err := os.MkdirTemp("", "mummi-fb")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		r, err := campaign.Feedback12x(dir, frames)
		if err != nil {
			return err
		}
		section("§4.2 feedback backends (the >12x claim)", campaign.FeedbackText(r))
	}
	if all || want["ml165x"] {
		fpsQ, binned := 35000, 1_000_000
		if full {
			binned = 9_000_000 // the campaign's 9M frame candidates
		}
		r, err := campaign.SelectorScaling(fpsQ, binned, seed)
		if err != nil {
			return err
		}
		section("§4.4 selector scaling (the 165x claim)", campaign.SelectorText(r))
	}
	if all || want["bundling"] {
		r, err := campaign.BundlingAblation(16, 4, seed)
		if err != nil {
			return err
		}
		section("§4.3 bundling ablation", campaign.BundlingText(r))
	}
	if all || want["inventory"] {
		rows, err := campaign.InventoryAblation([]float64{0.02, 0.1, 0.25, 0.5, 1.0}, seed)
		if err != nil {
			return err
		}
		section("§4.4 inventory ablation (readiness vs staleness)", campaign.InventoryText(rows))
	}
	return nil
}

// Command mummi-sim runs individual application components as a file-based
// pipeline — the paper deploys MuMMI "not only within large HPC
// environments but also on standard laptop computers (for testing and use
// of individual components)" (§4.5). Each subcommand reads and writes real
// files, so stages can be chained, inspected, and swapped:
//
//	mummi-sim continuum -grid 120 -proteins 30 -us 5 -out snap.gs2d
//	mummi-sim patches   -in snap.gs2d -outdir patches/
//	mummi-sim select    -indir patches/ -n 8
//	mummi-sim cg        -id sim01 -frames 50 -outdir frames/
//	mummi-sim feedback  -indir frames/ -species 14
//
// The campaign subcommand replays a small scaled campaign with the full
// observability surface (see docs/OBSERVABILITY.md):
//
//	mummi-sim campaign -scale 0.05 -trace trace.json -metrics metrics.json
//
// The trace subcommand works with workflow instances — portable JSON
// descriptions of a campaign (docs/SCENARIOS.md):
//
//	mummi-sim trace export -scale 0.05 -out my.trace.json
//	mummi-sim trace import -in my.trace.json
//	mummi-sim trace gen -seed 42 -n 8 -outdir sweeps/
//	mummi-sim campaign -trace-in scenarios/laptop-smoke.trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mummi/internal/campaign"
	"mummi/internal/continuum"
	"mummi/internal/datastore"
	"mummi/internal/dynim"
	"mummi/internal/errutil"
	"mummi/internal/feedback"
	"mummi/internal/fsstore"
	"mummi/internal/mlenc"
	"mummi/internal/patch"
	"mummi/internal/sim"
	"mummi/internal/telemetry"
	"mummi/internal/trace"
	"mummi/internal/units"
)

func main() {
	if len(os.Args) < 2 {
		fatal(fmt.Errorf("usage: mummi-sim continuum|patches|select|cg|feedback|campaign|trace [flags]"))
	}
	var err error
	switch os.Args[1] {
	case "continuum":
		err = runContinuum(os.Args[2:])
	case "patches":
		err = runPatches(os.Args[2:])
	case "select":
		err = runSelect(os.Args[2:])
	case "cg":
		err = runCG(os.Args[2:])
	case "feedback":
		err = runFeedback(os.Args[2:])
	case "campaign":
		err = runCampaign(os.Args[2:])
	case "trace":
		err = runTrace(os.Args[2:])
	default:
		err = fmt.Errorf("unknown component %q", os.Args[1])
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mummi-sim:", err)
	os.Exit(1)
}

// runCampaign replays a scaled campaign with observability on — the
// example campaign of docs/OBSERVABILITY.md. The default scale finishes in
// seconds on a laptop while still exercising every instrumented layer
// (all four workflow-manager tasks, the scheduler, and the feedback store).
// With -trace-in the campaign comes from a workflow instance instead of
// the configuration flags; -trace-out exports the effective configuration
// as a trace for replay elsewhere (docs/SCENARIOS.md).
func runCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	scale := fs.Float64("scale", 0.05, "paper-schedule scale factor (1.0 = full 600,600 node-hours)")
	seed := fs.Int64("seed", 1, "seed")
	scales := fs.String("scales", string(campaign.ThreeScale),
		"scale regime: three-scale (continuum+CG+AA) or two-scale (mini-MuMMI CG+AA)")
	feedbackEvery := fs.Duration("feedback-every", 30*time.Minute,
		"Task-4 feedback cadence in campaign virtual time (0 = off)")
	faultSpec := fs.String("faults", "",
		"chaos plan: JSON file, inline JSON, or 'class:rate;...' spec (see docs/RESILIENCE.md; empty = no faults)")
	wmInstances := fs.Int("wm-instances", 1,
		"workflow-manager fleet size (>1 spreads couplings across a lease-coordinated fleet; see docs/RESILIENCE.md)")
	traceIn := fs.String("trace-in", "", "replay this workflow instance instead of the configuration flags")
	traceOut := fs.String("trace-out", "", "export the effective campaign configuration as a workflow instance")
	traceName := fs.String("trace-name", "exported", "scenario name to record in -trace-out")
	var tf telemetry.Flags
	tf.Register(fs)
	fs.Parse(args)

	tel, srv, err := tf.Build()
	if err != nil {
		return err
	}
	var cfg campaign.Config
	if *traceIn != "" {
		// A trace is a complete configuration: mixing it with the flag-based
		// knobs would silently shadow the committed scenario, so refuse.
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scale", "seed", "scales", "feedback-every", "faults", "wm-instances":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-trace-in replaces the campaign configuration; drop %s", strings.Join(conflict, ", "))
		}
		t, err := readTrace(*traceIn)
		if err != nil {
			return err
		}
		if cfg, err = t.Config(); err != nil {
			return err
		}
		fmt.Printf("campaign: replaying scenario %s (%s)\n", t.Name, t.Description)
	} else {
		opts := campaign.Options{
			Scale: *scale, Seed: *seed, Scales: campaign.ScaleMode(*scales),
			FeedbackEvery: *feedbackEvery, FaultSpec: *faultSpec,
			WMInstances: *wmInstances,
		}
		if cfg, err = opts.Build(); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		t, err := trace.FromConfig(*traceName, "exported by mummi-sim campaign", cfg)
		if err != nil {
			return err
		}
		if err := writeTrace(*traceOut, t); err != nil {
			return err
		}
		fmt.Printf("campaign: wrote workflow instance -> %s\n", *traceOut)
	}
	cfg.Telemetry = tel
	if tf.HeartbeatEvery > 0 {
		cfg.HeartbeatEvery = tf.HeartbeatEvery
		cfg.HeartbeatWriter = os.Stderr
	}
	if srv != nil {
		fmt.Fprintf(os.Stderr, "campaign: serving metrics on http://%s/metrics\n", srv.Addr())
	}

	start := time.Now()
	res, err := campaign.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("campaign: %d runs, %v replayed in %v\n",
		res.RunsDone, res.TotalNodeHours, time.Since(start).Round(time.Millisecond))
	if cfg.Faults != nil {
		fmt.Printf("campaign: chaos %d node crashes, %d job hangs, %d wm restarts, %d store put errors, %d anomalies\n",
			res.NodeCrashes, res.JobHangs, res.WMRestarts, res.StorePutErrors, len(res.Anomalies))
		for _, a := range res.Anomalies {
			fmt.Println("  " + a)
		}
	}
	if cfg.WMInstances > 1 {
		fmt.Printf("campaign: fleet %d wm instances, %d crashes, %d adoptions, %d lease expirations\n",
			cfg.WMInstances, res.WMCrashes, res.WMAdoptions, res.LeaseExpirations)
	}

	if err := tf.Finish(tel, srv); err != nil {
		return err
	}
	if tel != nil {
		if tf.TracePath != "" {
			fmt.Printf("campaign: trace %d spans (%d dropped) -> %s\n",
				tel.Tracer().Len(), tel.Tracer().Dropped(), tf.TracePath)
		}
		if tf.MetricsPath != "" {
			fmt.Printf("campaign: metrics snapshot -> %s\n", tf.MetricsPath)
		}
	}
	return nil
}

// readTrace loads and validates a workflow instance file.
func readTrace(path string) (*trace.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := trace.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// writeTrace writes a workflow instance in canonical encoding.
func writeTrace(path string, t *trace.Trace) error {
	b, err := t.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// runTrace is the workflow-instance toolbox: export a configuration as a
// trace, import (validate and summarize) one, or generate a deterministic
// scenario sweep. The format and the committed scenario catalog are
// documented in docs/SCENARIOS.md.
func runTrace(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: mummi-sim trace export|import|gen [flags]")
	}
	switch args[0] {
	case "export":
		return runTraceExport(args[1:])
	case "import":
		return runTraceImport(args[1:])
	case "gen":
		return runTraceGen(args[1:])
	default:
		return fmt.Errorf("unknown trace subcommand %q (want export, import, or gen)", args[0])
	}
}

// runTraceExport builds a campaign configuration from the same knobs the
// campaign subcommand takes and writes it as a workflow instance.
func runTraceExport(args []string) error {
	fs := flag.NewFlagSet("trace export", flag.ExitOnError)
	scale := fs.Float64("scale", 0.05, "paper-schedule scale factor (1.0 = full 600,600 node-hours)")
	seed := fs.Int64("seed", 1, "seed")
	scales := fs.String("scales", string(campaign.ThreeScale),
		"scale regime: three-scale or two-scale")
	feedbackEvery := fs.Duration("feedback-every", 30*time.Minute,
		"Task-4 feedback cadence in campaign virtual time (0 = off)")
	faultSpec := fs.String("faults", "", "chaos plan (see docs/RESILIENCE.md; empty = no faults)")
	wmInstances := fs.Int("wm-instances", 1,
		"workflow-manager fleet size to record (see docs/RESILIENCE.md)")
	name := fs.String("name", "exported", "scenario name to record in the trace")
	desc := fs.String("desc", "exported by mummi-sim trace export", "scenario description")
	out := fs.String("out", "", "output file (default: <name>.trace.json)")
	fs.Parse(args)

	opts := campaign.Options{
		Scale: *scale, Seed: *seed, Scales: campaign.ScaleMode(*scales),
		FeedbackEvery: *feedbackEvery, FaultSpec: *faultSpec,
		WMInstances: *wmInstances,
	}
	cfg, err := opts.Build()
	if err != nil {
		return err
	}
	t, err := trace.FromConfig(*name, *desc, cfg)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = *name + ".trace.json"
	}
	if err := writeTrace(path, t); err != nil {
		return err
	}
	fmt.Printf("trace: exported %s -> %s\n", t.Name, path)
	return nil
}

// runTraceImport validates a workflow instance and prints its summary.
// With -out it re-exports the parsed trace in canonical encoding, which
// normalizes hand-edited files and (diffed against the input) proves the
// import/export round trip is byte-exact.
func runTraceImport(args []string) error {
	fs := flag.NewFlagSet("trace import", flag.ExitOnError)
	in := fs.String("in", "", "workflow instance to import (required)")
	out := fs.String("out", "", "re-export the trace canonically to this file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("trace import: -in is required")
	}
	t, err := readTrace(*in)
	if err != nil {
		return err
	}
	var nodes, count int
	var wall time.Duration
	for _, r := range t.Topology {
		if r.Nodes > nodes {
			nodes = r.Nodes
		}
		count += r.Count
		wall += time.Duration(r.Wall) * time.Duration(r.Count)
	}
	fmt.Printf("trace: %s (%s)\n", t.Name, t.Schema)
	fmt.Printf("  %s\n", t.Description)
	fmt.Printf("  seed %d, %d allocation(s) up to %d nodes, %v total wall\n",
		t.Seed, count, nodes, wall)
	fmt.Printf("  %s regime, %s/%s scheduler", t.Scales.Mode, t.Scheduler.Policy, t.Scheduler.Mode)
	if t.FaultPlan != nil {
		fmt.Printf(", %d fault rule(s)", len(t.FaultPlan.Rules))
	}
	fmt.Println()
	if *out != "" {
		if err := writeTrace(*out, t); err != nil {
			return err
		}
		fmt.Printf("trace: canonical re-export -> %s\n", *out)
	}
	return nil
}

// runTraceGen writes a deterministic scenario sweep (or, with -catalog,
// the named scenario matrix committed under scenarios/) as one
// <name>.trace.json per instance.
func runTraceGen(args []string) error {
	fs := flag.NewFlagSet("trace gen", flag.ExitOnError)
	seed := fs.Int64("seed", 42, "sweep seed (same seed+n = byte-identical traces)")
	n := fs.Int("n", 6, "instances to generate")
	outdir := fs.String("outdir", ".", "output directory")
	catalog := fs.Bool("catalog", false, "write the named scenario catalog instead of a seeded sweep")
	fs.Parse(args)

	var traces []*trace.Trace
	var err error
	if *catalog {
		traces, err = trace.Catalog()
	} else {
		traces, err = trace.Gen(*seed, *n)
	}
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		return err
	}
	for _, t := range traces {
		path := filepath.Join(*outdir, t.Name+".trace.json")
		if err := writeTrace(path, t); err != nil {
			return err
		}
		fmt.Printf("trace: %s\n", path)
	}
	fmt.Printf("trace: %d workflow instance(s) -> %s\n", len(traces), *outdir)
	return nil
}

// runContinuum evolves the macro model and writes a snapshot file.
func runContinuum(args []string) (err error) {
	fs := flag.NewFlagSet("continuum", flag.ExitOnError)
	grid := fs.Int("grid", 120, "grid resolution per side (paper: 2400)")
	proteins := fs.Int("proteins", 30, "protein count")
	us := fs.Float64("us", 2, "simulated time to advance (µs)")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "parallel stripes (0 = all cores)")
	out := fs.String("out", "snapshot.gs2d", "output snapshot file")
	fs.Parse(args)

	cfg := continuum.DefaultConfig()
	cfg.GridN = *grid
	cfg.Proteins = *proteins
	cfg.Seed = *seed
	s, err := continuum.NewParallel(cfg, *workers)
	if err != nil {
		return err
	}
	s.Step(units.SimTimeOf(*us, units.Microsecond))
	snap := s.Snapshot()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	// The snapshot is buffered through the file: a failed close is a
	// truncated snapshot and must fail the command.
	defer errutil.CaptureClose(&err, f.Close)
	n, err := snap.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("continuum: advanced %v on %d workers; snapshot %s (%s, %d species, %d proteins)\n",
		s.Time(), s.Workers(), *out, units.ByteSize(n), len(snap.Fields), len(snap.Protein))
	return nil
}

// runPatches cuts patches from a snapshot file into a directory.
func runPatches(args []string) error {
	fs := flag.NewFlagSet("patches", flag.ExitOnError)
	in := fs.String("in", "snapshot.gs2d", "input snapshot")
	outdir := fs.String("outdir", "patches", "output directory")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	snap, err := continuum.ReadSnapshot(f)
	f.Close() //lint:allow errdiscipline -- read-side close; ReadSnapshot already surfaced any data error
	if err != nil {
		return err
	}
	ps, err := patch.CreateAll(snap, patch.DefaultSize, patch.DefaultGridN)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		return err
	}
	var bytes int
	for _, p := range ps {
		b, err := p.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*outdir, p.ID+".npy"), b, 0o644); err != nil {
			return err
		}
		bytes += len(b)
	}
	fmt.Printf("patches: %d patches (%s) from %s into %s/\n",
		len(ps), units.ByteSize(bytes), *in, *outdir)
	return nil
}

// runSelect encodes every patch in a directory and farthest-point-selects n.
func runSelect(args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	indir := fs.String("indir", "patches", "patch directory")
	n := fs.Int("n", 5, "selections to make")
	seed := fs.Int64("seed", 7, "encoder seed")
	fs.Parse(args)

	ents, err := os.ReadDir(*indir)
	if err != nil {
		return err
	}
	var enc *mlenc.PatchEncoder
	sel := dynim.NewFarthestPoint(9, 0)
	loaded := 0
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".npy") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(*indir, e.Name()))
		if err != nil {
			return err
		}
		p, err := patch.Unmarshal(b)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		if enc == nil {
			enc, err = mlenc.NewPatchEncoder(len(p.Fields), p.GridN, 9, *seed)
			if err != nil {
				return err
			}
		}
		coords, err := enc.Encode(p)
		if err != nil {
			return err
		}
		if err := sel.Add(dynim.Point{ID: p.ID, Coords: coords}); err != nil {
			return err
		}
		loaded++
	}
	if loaded == 0 {
		return fmt.Errorf("no patches in %s", *indir)
	}
	chosen := sel.Select(*n)
	fmt.Printf("select: %d candidates, %d selected by novelty:\n", loaded, len(chosen))
	for _, p := range chosen {
		fmt.Printf("  %s\n", p.ID)
	}
	return nil
}

// runCG generates a CG analysis stream into a directory of frame files.
func runCG(args []string) error {
	fs := flag.NewFlagSet("cg", flag.ExitOnError)
	id := fs.String("id", "sim01", "simulation id")
	frames := fs.Int("frames", 50, "frames to produce")
	species := fs.Int("species", 14, "lipid species count")
	state := fs.Int("state", 1, "protein configuration state")
	seed := fs.Int64("seed", 3, "seed")
	outdir := fs.String("outdir", "frames", "output directory")
	fs.Parse(args)

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		return err
	}
	g := sim.NewCGSim(*id, *species, *state, nil, *seed)
	for i := 0; i < *frames; i++ {
		fr := g.NextFrame()
		b, err := fr.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*outdir, fr.ID()+".json"), b, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("cg: %s produced %d frames (%v of trajectory) into %s/\n",
		*id, g.Frames(), g.SimTime(), *outdir)
	return nil
}

// runFeedback aggregates a directory of CG frames into coupling parameters.
func runFeedback(args []string) error {
	fs := flag.NewFlagSet("feedback", flag.ExitOnError)
	indir := fs.String("indir", "frames", "frame directory")
	species := fs.Int("species", 14, "lipid species count")
	states := fs.Int("states", continuum.NumProteinStates, "protein states")
	fs.Parse(args)

	// Stage the directory into a filesystem store namespace, then run one
	// real feedback iteration over it.
	dir, err := os.MkdirTemp("", "mummi-fb")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := fsstore.New(dir)
	if err != nil {
		return err
	}
	var _ datastore.Store = store
	ents, err := os.ReadDir(*indir)
	if err != nil {
		return err
	}
	staged := 0
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(*indir, e.Name()))
		if err != nil {
			return err
		}
		if err := store.Put("new", strings.TrimSuffix(e.Name(), ".json"), b); err != nil {
			return err
		}
		staged++
	}
	var got [][]float64
	fb, err := feedback.NewCGToContinuum(feedback.CGConfig{
		Store: store, NewNS: "new", DoneNS: "done",
		Species: *species, States: *states,
		Apply: func(c [][]float64) error { got = c; return nil },
	})
	if err != nil {
		return err
	}
	rep, err := fb.Iterate()
	if err != nil {
		return err
	}
	fmt.Printf("feedback: %d/%d frames aggregated in %v\n", rep.Frames, staged, rep.Total())
	if got != nil {
		fmt.Println("couplings (state x species):")
		for st, row := range got {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = fmt.Sprintf("%.3f", v)
			}
			fmt.Printf("  state %d: %s\n", st, strings.Join(cells, " "))
		}
	}
	return nil
}

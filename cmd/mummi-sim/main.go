// Command mummi-sim runs individual application components as a file-based
// pipeline — the paper deploys MuMMI "not only within large HPC
// environments but also on standard laptop computers (for testing and use
// of individual components)" (§4.5). Each subcommand reads and writes real
// files, so stages can be chained, inspected, and swapped:
//
//	mummi-sim continuum -grid 120 -proteins 30 -us 5 -out snap.gs2d
//	mummi-sim patches   -in snap.gs2d -outdir patches/
//	mummi-sim select    -indir patches/ -n 8
//	mummi-sim cg        -id sim01 -frames 50 -outdir frames/
//	mummi-sim feedback  -indir frames/ -species 14
//
// The campaign subcommand replays a small scaled campaign with the full
// observability surface (see docs/OBSERVABILITY.md):
//
//	mummi-sim campaign -scale 0.05 -trace trace.json -metrics metrics.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mummi/internal/campaign"
	"mummi/internal/continuum"
	"mummi/internal/datastore"
	"mummi/internal/dynim"
	"mummi/internal/errutil"
	"mummi/internal/faults"
	"mummi/internal/feedback"
	"mummi/internal/fsstore"
	"mummi/internal/mlenc"
	"mummi/internal/patch"
	"mummi/internal/sim"
	"mummi/internal/telemetry"
	"mummi/internal/units"
)

func main() {
	if len(os.Args) < 2 {
		fatal(fmt.Errorf("usage: mummi-sim continuum|patches|select|cg|feedback|campaign [flags]"))
	}
	var err error
	switch os.Args[1] {
	case "continuum":
		err = runContinuum(os.Args[2:])
	case "patches":
		err = runPatches(os.Args[2:])
	case "select":
		err = runSelect(os.Args[2:])
	case "cg":
		err = runCG(os.Args[2:])
	case "feedback":
		err = runFeedback(os.Args[2:])
	case "campaign":
		err = runCampaign(os.Args[2:])
	default:
		err = fmt.Errorf("unknown component %q", os.Args[1])
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mummi-sim:", err)
	os.Exit(1)
}

// runCampaign replays a scaled campaign with observability on — the
// example campaign of docs/OBSERVABILITY.md. The default scale finishes in
// seconds on a laptop while still exercising every instrumented layer
// (all four workflow-manager tasks, the scheduler, and the feedback store).
func runCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	scale := fs.Float64("scale", 0.05, "paper-schedule scale factor (1.0 = full 600,600 node-hours)")
	seed := fs.Int64("seed", 1, "seed")
	feedbackEvery := fs.Duration("feedback-every", 30*time.Minute,
		"Task-4 feedback cadence in campaign virtual time (0 = off)")
	faultSpec := fs.String("faults", "",
		"chaos plan: JSON file, inline JSON, or 'class:rate;...' spec (see docs/RESILIENCE.md; empty = no faults)")
	var tf telemetry.Flags
	tf.Register(fs)
	fs.Parse(args)

	tel, srv, err := tf.Build()
	if err != nil {
		return err
	}
	cfg := campaign.DefaultConfig()
	cfg.Seed = *seed
	cfg.Runs = campaign.ScaledRuns(*scale)
	cfg.Telemetry = tel
	cfg.FeedbackEvery = *feedbackEvery
	if *faultSpec != "" {
		plan, err := faults.ParseFlag(*faultSpec)
		if err != nil {
			return err
		}
		if plan.Seed == 0 {
			plan.Seed = cfg.Seed
		}
		cfg.Faults = plan
	}
	if tf.HeartbeatEvery > 0 {
		cfg.HeartbeatEvery = tf.HeartbeatEvery
		cfg.HeartbeatWriter = os.Stderr
	}
	if srv != nil {
		fmt.Fprintf(os.Stderr, "campaign: serving metrics on http://%s/metrics\n", srv.Addr())
	}

	start := time.Now()
	res, err := campaign.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("campaign: %d runs, %v replayed in %v\n",
		res.RunsDone, res.TotalNodeHours, time.Since(start).Round(time.Millisecond))
	if cfg.Faults != nil {
		fmt.Printf("campaign: chaos %d node crashes, %d job hangs, %d wm restarts, %d store put errors, %d anomalies\n",
			res.NodeCrashes, res.JobHangs, res.WMRestarts, res.StorePutErrors, len(res.Anomalies))
		for _, a := range res.Anomalies {
			fmt.Println("  " + a)
		}
	}

	if err := tf.Finish(tel, srv); err != nil {
		return err
	}
	if tel != nil {
		if tf.TracePath != "" {
			fmt.Printf("campaign: trace %d spans (%d dropped) -> %s\n",
				tel.Tracer().Len(), tel.Tracer().Dropped(), tf.TracePath)
		}
		if tf.MetricsPath != "" {
			fmt.Printf("campaign: metrics snapshot -> %s\n", tf.MetricsPath)
		}
	}
	return nil
}

// runContinuum evolves the macro model and writes a snapshot file.
func runContinuum(args []string) (err error) {
	fs := flag.NewFlagSet("continuum", flag.ExitOnError)
	grid := fs.Int("grid", 120, "grid resolution per side (paper: 2400)")
	proteins := fs.Int("proteins", 30, "protein count")
	us := fs.Float64("us", 2, "simulated time to advance (µs)")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "parallel stripes (0 = all cores)")
	out := fs.String("out", "snapshot.gs2d", "output snapshot file")
	fs.Parse(args)

	cfg := continuum.DefaultConfig()
	cfg.GridN = *grid
	cfg.Proteins = *proteins
	cfg.Seed = *seed
	s, err := continuum.NewParallel(cfg, *workers)
	if err != nil {
		return err
	}
	s.Step(units.SimTimeOf(*us, units.Microsecond))
	snap := s.Snapshot()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	// The snapshot is buffered through the file: a failed close is a
	// truncated snapshot and must fail the command.
	defer errutil.CaptureClose(&err, f.Close)
	n, err := snap.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("continuum: advanced %v on %d workers; snapshot %s (%s, %d species, %d proteins)\n",
		s.Time(), s.Workers(), *out, units.ByteSize(n), len(snap.Fields), len(snap.Protein))
	return nil
}

// runPatches cuts patches from a snapshot file into a directory.
func runPatches(args []string) error {
	fs := flag.NewFlagSet("patches", flag.ExitOnError)
	in := fs.String("in", "snapshot.gs2d", "input snapshot")
	outdir := fs.String("outdir", "patches", "output directory")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	snap, err := continuum.ReadSnapshot(f)
	f.Close() //lint:allow errdiscipline -- read-side close; ReadSnapshot already surfaced any data error
	if err != nil {
		return err
	}
	ps, err := patch.CreateAll(snap, patch.DefaultSize, patch.DefaultGridN)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		return err
	}
	var bytes int
	for _, p := range ps {
		b, err := p.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*outdir, p.ID+".npy"), b, 0o644); err != nil {
			return err
		}
		bytes += len(b)
	}
	fmt.Printf("patches: %d patches (%s) from %s into %s/\n",
		len(ps), units.ByteSize(bytes), *in, *outdir)
	return nil
}

// runSelect encodes every patch in a directory and farthest-point-selects n.
func runSelect(args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	indir := fs.String("indir", "patches", "patch directory")
	n := fs.Int("n", 5, "selections to make")
	seed := fs.Int64("seed", 7, "encoder seed")
	fs.Parse(args)

	ents, err := os.ReadDir(*indir)
	if err != nil {
		return err
	}
	var enc *mlenc.PatchEncoder
	sel := dynim.NewFarthestPoint(9, 0)
	loaded := 0
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".npy") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(*indir, e.Name()))
		if err != nil {
			return err
		}
		p, err := patch.Unmarshal(b)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		if enc == nil {
			enc, err = mlenc.NewPatchEncoder(len(p.Fields), p.GridN, 9, *seed)
			if err != nil {
				return err
			}
		}
		coords, err := enc.Encode(p)
		if err != nil {
			return err
		}
		if err := sel.Add(dynim.Point{ID: p.ID, Coords: coords}); err != nil {
			return err
		}
		loaded++
	}
	if loaded == 0 {
		return fmt.Errorf("no patches in %s", *indir)
	}
	chosen := sel.Select(*n)
	fmt.Printf("select: %d candidates, %d selected by novelty:\n", loaded, len(chosen))
	for _, p := range chosen {
		fmt.Printf("  %s\n", p.ID)
	}
	return nil
}

// runCG generates a CG analysis stream into a directory of frame files.
func runCG(args []string) error {
	fs := flag.NewFlagSet("cg", flag.ExitOnError)
	id := fs.String("id", "sim01", "simulation id")
	frames := fs.Int("frames", 50, "frames to produce")
	species := fs.Int("species", 14, "lipid species count")
	state := fs.Int("state", 1, "protein configuration state")
	seed := fs.Int64("seed", 3, "seed")
	outdir := fs.String("outdir", "frames", "output directory")
	fs.Parse(args)

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		return err
	}
	g := sim.NewCGSim(*id, *species, *state, nil, *seed)
	for i := 0; i < *frames; i++ {
		fr := g.NextFrame()
		b, err := fr.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*outdir, fr.ID()+".json"), b, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("cg: %s produced %d frames (%v of trajectory) into %s/\n",
		*id, g.Frames(), g.SimTime(), *outdir)
	return nil
}

// runFeedback aggregates a directory of CG frames into coupling parameters.
func runFeedback(args []string) error {
	fs := flag.NewFlagSet("feedback", flag.ExitOnError)
	indir := fs.String("indir", "frames", "frame directory")
	species := fs.Int("species", 14, "lipid species count")
	states := fs.Int("states", continuum.NumProteinStates, "protein states")
	fs.Parse(args)

	// Stage the directory into a filesystem store namespace, then run one
	// real feedback iteration over it.
	dir, err := os.MkdirTemp("", "mummi-fb")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := fsstore.New(dir)
	if err != nil {
		return err
	}
	var _ datastore.Store = store
	ents, err := os.ReadDir(*indir)
	if err != nil {
		return err
	}
	staged := 0
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(*indir, e.Name()))
		if err != nil {
			return err
		}
		if err := store.Put("new", strings.TrimSuffix(e.Name(), ".json"), b); err != nil {
			return err
		}
		staged++
	}
	var got [][]float64
	fb, err := feedback.NewCGToContinuum(feedback.CGConfig{
		Store: store, NewNS: "new", DoneNS: "done",
		Species: *species, States: *states,
		Apply: func(c [][]float64) error { got = c; return nil },
	})
	if err != nil {
		return err
	}
	rep, err := fb.Iterate()
	if err != nil {
		return err
	}
	fmt.Printf("feedback: %d/%d frames aggregated in %v\n", rep.Frames, staged, rep.Total())
	if got != nil {
		fmt.Println("couplings (state x species):")
		for st, row := range got {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = fmt.Sprintf("%.3f", v)
			}
			fmt.Printf("  state %d: %s\n", st, strings.Join(cells, " "))
		}
	}
	return nil
}

// Command kvstore runs mummi's Redis-like in-memory store as a standalone
// server, or acts as a simple client against one.
//
// Usage:
//
//	kvstore serve -addr 127.0.0.1:6399 [-replica host:port]
//	kvstore set   -addr 127.0.0.1:6399 key value
//	kvstore get   -addr 127.0.0.1:6399 key
//	kvstore keys  -addr 127.0.0.1:6399 'prefix:*'
//	kvstore del   -addr 127.0.0.1:6399 key...
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"mummi/internal/kvstore"
)

func main() {
	if len(os.Args) < 2 {
		fatal(fmt.Errorf("usage: kvstore serve|set|get|keys|del [-addr host:port] args..."))
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:6399", "server address")
	replica := fs.String("replica", "", "serve: forward every mutation to this replica server and await its ack (promotes this server to shard primary)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}
	args := fs.Args()

	if cmd == "serve" {
		srv := kvstore.NewServer(nil)
		if *replica != "" {
			srv.SetReplica(*replica)
		}
		bound, err := srv.Listen(*addr)
		if err != nil {
			fatal(err)
		}
		if *replica != "" {
			fmt.Println("kvstore listening on", bound, "replicating to", *replica)
		} else {
			fmt.Println("kvstore listening on", bound)
		}
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "kvstore: shutdown:", err)
		}
		return
	}

	c, err := kvstore.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close() //lint:allow errdiscipline -- process exits immediately after; nothing can act on a client close failure
	switch cmd {
	case "set":
		if len(args) != 2 {
			fatal(fmt.Errorf("set needs key and value"))
		}
		if err := c.Set(args[0], []byte(args[1])); err != nil {
			fatal(err)
		}
	case "get":
		if len(args) != 1 {
			fatal(fmt.Errorf("get needs a key"))
		}
		v, err := c.Get(args[0])
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(v))
	case "keys":
		if len(args) != 1 {
			fatal(fmt.Errorf("keys needs a pattern"))
		}
		ks, err := c.Keys(args[0])
		if err != nil {
			fatal(err)
		}
		for _, k := range ks {
			fmt.Println(k)
		}
	case "del":
		if len(args) == 0 {
			fatal(fmt.Errorf("del needs keys"))
		}
		n, err := c.Del(args...)
		if err != nil {
			fatal(err)
		}
		fmt.Println(n)
	default:
		fatal(fmt.Errorf("unknown command %q", cmd))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kvstore:", err)
	os.Exit(1)
}

// Command mummi-run replays a MuMMI campaign from a JSON configuration and
// prints the full evaluation report. With no -config it runs the paper's
// Table 1 schedule at the given -scale.
//
// Example configuration:
//
//	{
//	  "seed": 7,
//	  "runs": [
//	    {"nodes": 100, "wall": "6h", "count": 5},
//	    {"nodes": 1000, "wall": "24h", "count": 20}
//	  ]
//	}
//
// Campaigns also travel as workflow instances — portable, versioned trace
// files (docs/SCENARIOS.md): -trace-in replays one, -trace-out exports the
// effective configuration as one.
//
//	mummi-run -trace-in scenarios/chaos-full-stack.trace.json
//	mummi-run -scale 0.05 -trace-out my.trace.json
//
// The observability flags (-trace, -metrics, -metrics-addr, -heartbeat)
// record the replay's telemetry; see docs/OBSERVABILITY.md:
//
//	mummi-run -scale 0.05 -trace trace.json -metrics metrics.json -heartbeat 1h
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mummi/internal/campaign"
	"mummi/internal/faults"
	"mummi/internal/telemetry"
	"mummi/internal/trace"
)

// fileConfig is the JSON shape of -config (durations as strings).
type fileConfig struct {
	Seed int64 `json:"seed"`
	Runs []struct {
		Nodes int    `json:"nodes"`
		Wall  string `json:"wall"`
		Count int    `json:"count"`
	} `json:"runs"`
	CGShare                 float64 `json:"cg_share,omitempty"`
	PatchesPerSnapshot      int     `json:"patches_per_snapshot,omitempty"`
	FrameCandidateSubsample float64 `json:"frame_candidate_subsample,omitempty"`
}

func main() {
	cfgPath := flag.String("config", "", "JSON campaign configuration (empty = paper schedule)")
	scale := flag.Float64("scale", 0.25, "paper-schedule scale when no -config is given")
	seed := flag.Int64("seed", 1, "seed when no -config is given")
	scales := flag.String("scales", string(campaign.ThreeScale),
		"scale regime: three-scale (continuum+CG+AA) or two-scale (mini-MuMMI CG+AA)")
	feedbackEvery := flag.Duration("feedback-every", 30*time.Minute,
		"Task-4 feedback cadence in campaign virtual time (0 = off)")
	faultSpec := flag.String("faults", "",
		"chaos plan: JSON file, inline JSON, or 'class:rate;...' spec (see docs/RESILIENCE.md; empty = no faults)")
	wmInstances := flag.Int("wm-instances", 1,
		"workflow-manager fleet size (>1 spreads couplings across a lease-coordinated fleet; see docs/RESILIENCE.md)")
	traceIn := flag.String("trace-in", "", "replay this workflow instance instead of -config/-scale")
	traceOut := flag.String("trace-out", "", "export the effective campaign configuration as a workflow instance")
	traceName := flag.String("trace-name", "exported", "scenario name to record in -trace-out")
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	var cfg campaign.Config
	switch {
	case *traceIn != "":
		// A trace is a complete configuration: mixing it with the flag-based
		// knobs would silently shadow the committed scenario, so refuse.
		var conflict []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "config", "scale", "seed", "scales", "feedback-every", "faults", "wm-instances":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			fatal(fmt.Errorf("-trace-in replaces the campaign configuration; drop %s", strings.Join(conflict, ", ")))
		}
		b, err := os.ReadFile(*traceIn)
		if err != nil {
			fatal(err)
		}
		t, err := trace.Parse(b)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *traceIn, err))
		}
		if cfg, err = t.Config(); err != nil {
			fatal(err)
		}
		fmt.Printf("replaying scenario %s (%s)\n", t.Name, t.Description)
	case *cfgPath != "":
		cfg = campaign.DefaultConfig()
		b, err := os.ReadFile(*cfgPath)
		if err != nil {
			fatal(err)
		}
		var fc fileConfig
		if err := json.Unmarshal(b, &fc); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *cfgPath, err))
		}
		cfg.Seed = fc.Seed
		cfg.Runs = nil
		for _, r := range fc.Runs {
			d, err := time.ParseDuration(r.Wall)
			if err != nil {
				fatal(fmt.Errorf("run wall %q: %w", r.Wall, err))
			}
			cfg.Runs = append(cfg.Runs, campaign.RunSpec{Nodes: r.Nodes, Wall: d, Count: r.Count})
		}
		if fc.CGShare > 0 {
			cfg.CGShare = fc.CGShare
		}
		if fc.PatchesPerSnapshot > 0 {
			cfg.PatchesPerSnapshot = fc.PatchesPerSnapshot
		}
		if fc.FrameCandidateSubsample > 0 {
			cfg.FrameCandidateSubsample = fc.FrameCandidateSubsample
		}
		cfg.Scales = campaign.ScaleMode(*scales)
		cfg.FeedbackEvery = *feedbackEvery
		cfg.WMInstances = *wmInstances
		if *faultSpec != "" {
			plan, err := faults.ParseFlag(*faultSpec)
			if err != nil {
				fatal(err)
			}
			if plan.Seed == 0 {
				plan.Seed = cfg.Seed
			}
			cfg.Faults = plan
		}
	default:
		opts := campaign.Options{
			Scale: *scale, Seed: *seed, Scales: campaign.ScaleMode(*scales),
			FeedbackEvery: *feedbackEvery, FaultSpec: *faultSpec,
			WMInstances: *wmInstances,
		}
		var err error
		if cfg, err = opts.Build(); err != nil {
			fatal(err)
		}
	}

	if *traceOut != "" {
		t, err := trace.FromConfig(*traceName, "exported by mummi-run", cfg)
		if err != nil {
			fatal(err)
		}
		b, err := t.Marshal()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*traceOut, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote workflow instance -> %s\n", *traceOut)
	}

	tel, srv, err := tf.Build()
	if err != nil {
		fatal(err)
	}
	cfg.Telemetry = tel
	if tf.HeartbeatEvery > 0 {
		cfg.HeartbeatEvery = tf.HeartbeatEvery
		cfg.HeartbeatWriter = os.Stderr
	}
	if srv != nil {
		fmt.Fprintf(os.Stderr, "mummi-run: serving metrics on http://%s/metrics\n", srv.Addr())
	}

	start := time.Now()
	res, err := campaign.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("campaign replayed in %v\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Println(res.Table1Text())
	fmt.Println(res.CountsText())
	fmt.Println(res.Fig5Text())
	if cfg.Faults != nil {
		fmt.Printf("chaos: %d node crashes, %d job hangs, %d wm restarts, %d store put errors, %d anomalies\n",
			res.NodeCrashes, res.JobHangs, res.WMRestarts, res.StorePutErrors, len(res.Anomalies))
		for _, a := range res.Anomalies {
			fmt.Println("  " + a)
		}
	}
	if cfg.WMInstances > 1 {
		fmt.Printf("fleet: %d wm instances, %d crashes, %d adoptions, %d lease expirations\n",
			cfg.WMInstances, res.WMCrashes, res.WMAdoptions, res.LeaseExpirations)
	}

	if err := tf.Finish(tel, srv); err != nil {
		fatal(err)
	}
	if tel != nil {
		if tf.TracePath != "" {
			fmt.Printf("trace: %d spans (%d dropped) -> %s\n",
				tel.Tracer().Len(), tel.Tracer().Dropped(), tf.TracePath)
		}
		if tf.MetricsPath != "" {
			fmt.Printf("metrics: snapshot -> %s\n", tf.MetricsPath)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mummi-run:", err)
	os.Exit(1)
}

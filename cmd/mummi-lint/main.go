// Command mummi-lint runs the project's static-analysis suite (package
// internal/lint): determinism, lockdiscipline, and errdiscipline. It is
// wired into `make lint` and scripts/ci.sh and exits non-zero on findings,
// so a violated invariant fails the build rather than waiting for a test
// to happen to trip over it.
//
// Usage:
//
//	mummi-lint [flags] [patterns]
//
//	patterns        ./...-style package patterns relative to the module
//	                root (default ./...)
//	-json           machine-readable output
//	-analyzers      comma-separated subset (default: all)
//	-errallow FILE  error-discipline allowlist (default: .errallow at the
//	                module root, if present)
//	-list           print the analyzers and exit
//
// Findings are suppressed with a `//lint:allow <analyzer> -- reason`
// comment on the offending line or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mummi/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	analyzerList := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	errAllowPath := flag.String("errallow", "", "errdiscipline allowlist file (default: <module>/.errallow)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *analyzerList != "" {
		var err error
		analyzers, err = lint.ByName(*analyzerList)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	mod, err := lint.LoadModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	errAllow, err := loadErrAllow(*errAllowPath, mod.Root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	patterns := flag.Args()
	var findings []lint.Diagnostic
	for _, pkg := range mod.Pkgs {
		if !mod.Match(pkg, patterns) {
			continue
		}
		findings = append(findings, lint.RunAnalyzers(pkg, analyzers, errAllow)...)
	}
	lint.SortDiagnostics(findings)

	// Report paths relative to the working directory, like go vet.
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Diagnostic{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range findings {
			fmt.Println(d.String())
		}
		if len(findings) > 0 {
			fmt.Printf("mummi-lint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// loadErrAllow reads the allowlist: one FullName-style symbol pattern per
// line, '#' comments, optional trailing '*' wildcard.
func loadErrAllow(path, modRoot string) ([]string, error) {
	if path == "" {
		path = filepath.Join(modRoot, ".errallow")
		if _, err := os.Stat(path); err != nil {
			return nil, nil // optional default
		}
	}
	out, err := lint.LoadErrAllow(path)
	if err != nil {
		return nil, fmt.Errorf("mummi-lint: reading allowlist: %w", err)
	}
	return out, nil
}

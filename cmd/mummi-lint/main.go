// Command mummi-lint runs the project's static-analysis suite (package
// internal/lint): the per-package analyzers (determinism, lockdiscipline,
// errdiscipline, doccomment) and the interprocedural module analyzers
// (goroutinelifecycle, lockorder, channeldiscipline). It is wired into
// `make lint` and scripts/ci.sh and exits non-zero on findings, so a
// violated invariant fails the build rather than waiting for a test to
// happen to trip over it.
//
// Usage:
//
//	mummi-lint [flags] [patterns]
//
//	patterns        ./...-style package patterns relative to the module
//	                root (default ./...)
//	-json           machine-readable output: {"findings": [...],
//	                "elapsed_ms": N, "packages": N, "analyzers": [...]}
//	-analyzers      comma-separated subset (default: all)
//	-errallow FILE  error-discipline allowlist (default: .errallow at the
//	                module root, if present)
//	-unused-suppressions  also fail on //lint:allow comments that suppress
//	                nothing (stale suppressions)
//	-budget D       warn on stderr when the run exceeds this wall-clock
//	                budget (0 = no budget)
//	-list           print the analyzers and exit
//
// Findings are suppressed with a `//lint:allow <analyzer> -- reason`
// comment on the offending line or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mummi/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	analyzerList := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	errAllowPath := flag.String("errallow", "", "errdiscipline allowlist file (default: <module>/.errallow)")
	unusedSup := flag.Bool("unused-suppressions", false, "fail on //lint:allow comments that suppress nothing")
	budget := flag.Duration("budget", 0, "warn when the run exceeds this wall-clock budget (0 = off)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		for _, a := range lint.AllModule() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, modAnalyzers, err := lint.SelectAnalyzers(*analyzerList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	start := time.Now()
	mod, err := lint.LoadModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	errAllow, err := loadErrAllow(*errAllowPath, mod.Root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	findings := mod.Run(lint.RunOptions{
		Analyzers:          analyzers,
		ModuleAnalyzers:    modAnalyzers,
		ErrAllow:           errAllow,
		Patterns:           flag.Args(),
		UnusedSuppressions: *unusedSup,
	})
	elapsed := time.Since(start)

	// Report paths relative to the working directory, like go vet.
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}

	if *jsonOut {
		names := make([]string, 0, len(analyzers)+len(modAnalyzers))
		for _, a := range analyzers {
			names = append(names, a.Name)
		}
		for _, a := range modAnalyzers {
			names = append(names, a.Name)
		}
		if findings == nil {
			findings = []lint.Diagnostic{}
		}
		report := struct {
			Findings  []lint.Diagnostic `json:"findings"`
			ElapsedMS int64             `json:"elapsed_ms"`
			Packages  int               `json:"packages"`
			Analyzers []string          `json:"analyzers"`
		}{findings, elapsed.Milliseconds(), len(mod.Pkgs), names}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range findings {
			fmt.Println(d.String())
		}
		if len(findings) > 0 {
			fmt.Printf("mummi-lint: %d finding(s)\n", len(findings))
		}
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "mummi-lint: WARNING: wall-clock %s exceeds budget %s (source-mode type-check is ballooning; investigate before CI rots)\n",
			elapsed.Round(time.Millisecond), *budget)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// loadErrAllow reads the allowlist: one FullName-style symbol pattern per
// line, '#' comments, optional trailing '*' wildcard.
func loadErrAllow(path, modRoot string) ([]string, error) {
	if path == "" {
		path = filepath.Join(modRoot, ".errallow")
		if _, err := os.Stat(path); err != nil {
			return nil, nil // optional default
		}
	}
	out, err := lint.LoadErrAllow(path)
	if err != nil {
		return nil, fmt.Errorf("mummi-lint: reading allowlist: %w", err)
	}
	return out, nil
}
